package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"immersionoc/internal/api"
	"immersionoc/internal/telemetry"
)

// Kind classifies an experiment's output: a formatted table or a
// rendered ASCII plot.
type Kind int

const (
	// KindTable experiments produce a *Table.
	KindTable Kind = iota
	// KindPlot experiments produce a rendered ASCII chart.
	KindPlot
)

// String returns the lowercase kind name used in listings and JSON.
func (k Kind) String() string {
	if k == KindPlot {
		return "plot"
	}
	return "table"
}

// Options carries the run-time knobs shared by every experiment. The
// zero value means "use the experiment's calibrated defaults", so new
// knobs can be added without breaking call sites. The JSON form
// follows the control-plane wire convention (internal/api): snake_case
// names, omitempty, so option sets serialize the same way API
// requests do.
type Options struct {
	// Seed overrides the experiment's default RNG seed when non-zero.
	// Zero keeps the calibrated per-experiment seed, so the zero value
	// reproduces the published tables exactly.
	Seed uint64 `json:"seed,omitempty"`
	// DurationS overrides the simulated duration in seconds, for the
	// experiments that have one, when positive.
	DurationS float64 `json:"duration_s,omitempty"`
	// Workers bounds the intra-experiment sweep parallelism: the
	// harnesses whose grids fan out through sweep.Map run at most this
	// many cells at once, drawing slots from the runner's shared
	// worker budget. ≤ 1 — including the zero value — keeps every
	// sweep serial, reproducing the original loops exactly; the
	// runner threads the resolved octl -j value here.
	Workers int `json:"workers,omitempty"`
	// Tel is the per-run telemetry scope the harness publishes its
	// engine metrics into (the runner keys it by experiment name).
	// Nil — the zero value — disables collection; every telemetry
	// operation through a nil scope is a no-op, so harnesses pass it
	// down unconditionally. Telemetry is process state, not a wire
	// field.
	Tel *telemetry.Scope `json:"-"`
}

// SeedOr returns the option seed, or def when unset.
func (o Options) SeedOr(def uint64) uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return def
}

// DurationOr returns the option duration, or def when unset.
func (o Options) DurationOr(def float64) float64 {
	if o.DurationS > 0 {
		return o.DurationS
	}
	return def
}

// Result is the outcome of one experiment run: the rendered artifact
// plus a structured form that marshals to JSON.
type Result struct {
	// Name and Kind identify the producing experiment.
	Name string
	Kind Kind
	// Tags mirror the experiment descriptor's tags.
	Tags []string
	// Table holds the structured rows for KindTable results.
	Table *Table
	// Plot holds the rendered chart for KindPlot results.
	Plot string
}

// Text renders the result the way octl prints it.
func (r Result) Text() string {
	if r.Kind == KindPlot {
		return r.Plot
	}
	if r.Table == nil {
		return ""
	}
	return r.Table.String()
}

// RowCount reports the number of structured rows (0 for plots).
func (r Result) RowCount() int {
	if r.Table == nil {
		return 0
	}
	return len(r.Table.Rows)
}

// resultJSON is the stable wire form of a Result. Field order is the
// JSON schema documented in the README; the version tag and naming
// follow the control-plane wire convention (internal/api).
type resultJSON struct {
	Vers   string     `json:"version,omitempty"`
	Name   string     `json:"name"`
	Kind   string     `json:"kind"`
	Tags   []string   `json:"tags,omitempty"`
	Title  string     `json:"title,omitempty"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	Notes  []string   `json:"notes,omitempty"`
	Text   string     `json:"text,omitempty"`
}

// MarshalJSON emits the structured form: table results carry
// title/header/rows/notes, plot results carry the rendered text.
func (r Result) MarshalJSON() ([]byte, error) {
	j := resultJSON{Vers: api.Version, Name: r.Name, Kind: r.Kind.String(), Tags: r.Tags}
	if r.Table != nil {
		j.Title = r.Table.Title
		j.Header = r.Table.Header
		j.Rows = r.Table.Rows
		j.Notes = r.Table.Notes
	}
	if r.Kind == KindPlot {
		j.Text = r.Plot
	}
	return json.Marshal(j)
}

// Experiment is one registered harness. Every table and figure of the
// evaluation — paper artifacts, extensions, ablations and plots —
// registers exactly one descriptor; the registry is the single source
// of truth octl, the runner and the tests enumerate.
type Experiment struct {
	// Name is the octl-facing identifier (e.g. "table5", "fig9").
	Name string
	// Kind distinguishes tables from ASCII plots.
	Kind Kind
	// Seq orders the experiment within All(); `octl all` preserves the
	// paper's presentation order through it.
	Seq int
	// Tags group experiments for selection: "paper", "extension",
	// "ablation", "plot", plus "fast" for the model-driven harnesses
	// that finish in milliseconds and "sim" for the event-driven runs.
	Tags []string
	// Run executes the harness. Implementations honor ctx
	// cancellation at their natural internal boundaries and treat the
	// zero Options as the calibrated defaults.
	Run func(ctx context.Context, o Options) (Result, error)
}

// HasTag reports whether the experiment carries the tag.
func (e Experiment) HasTag(tag string) bool {
	for _, t := range e.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

var registry = struct {
	sync.Mutex
	byName map[string]Experiment
}{byName: map[string]Experiment{}}

// Register adds an experiment to the registry. It panics on empty
// names, duplicate names or a nil Run, so misregistration fails at
// init time rather than mid-evaluation.
func Register(e Experiment) {
	if e.Name == "" {
		panic("experiments: Register with empty name")
	}
	if e.Run == nil {
		panic(fmt.Sprintf("experiments: Register(%q) with nil Run", e.Name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[e.Name]; dup {
		panic(fmt.Sprintf("experiments: duplicate Register(%q)", e.Name))
	}
	registry.byName[e.Name] = e
}

// All returns every registered experiment in presentation order
// (Seq, then name).
func All() []Experiment {
	registry.Lock()
	defer registry.Unlock()
	out := make([]Experiment, 0, len(registry.byName))
	for _, e := range registry.byName {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Tables returns the table-kind experiments in presentation order —
// the set `octl all` runs.
func Tables() []Experiment {
	var out []Experiment
	for _, e := range All() {
		if e.Kind == KindTable {
			out = append(out, e)
		}
	}
	return out
}

// WithTag returns the experiments carrying the tag, in presentation
// order.
func WithTag(tag string) []Experiment {
	var out []Experiment
	for _, e := range All() {
		if e.HasTag(tag) {
			out = append(out, e)
		}
	}
	return out
}

// Lookup resolves an experiment by name.
func Lookup(name string) (Experiment, bool) {
	registry.Lock()
	defer registry.Unlock()
	e, ok := registry.byName[name]
	return e, ok
}

// Names returns every registered name in presentation order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.Name
	}
	return out
}

// registerTable registers a table-kind experiment from a harness
// returning (*Table, error); the Result envelope is filled in here so
// harness files only supply the table.
func registerTable(name string, seq int, tags []string, run func(ctx context.Context, o Options) (*Table, error)) {
	Register(Experiment{
		Name: name, Kind: KindTable, Seq: seq, Tags: tags,
		Run: func(ctx context.Context, o Options) (Result, error) {
			t, err := run(ctx, o)
			if err != nil {
				return Result{}, err
			}
			return Result{Name: name, Kind: KindTable, Tags: tags, Table: t}, nil
		},
	})
}

// registerPlot registers a plot-kind experiment from a harness
// returning the rendered chart text.
func registerPlot(name string, seq int, tags []string, run func(ctx context.Context, o Options) (string, error)) {
	Register(Experiment{
		Name: name, Kind: KindPlot, Seq: seq, Tags: tags,
		Run: func(ctx context.Context, o Options) (Result, error) {
			s, err := run(ctx, o)
			if err != nil {
				return Result{}, err
			}
			return Result{Name: name, Kind: KindPlot, Tags: tags, Plot: s}, nil
		},
	})
}
