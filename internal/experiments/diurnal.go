package experiments

import (
	"context"
	"fmt"

	"immersionoc/internal/autoscaler"
	"immersionoc/internal/sweep"
)

// DiurnalResult compares auto-scaler policies over a compressed
// diurnal day.
type DiurnalResult struct {
	Results []*autoscaler.Result
}

// DiurnalData runs Baseline, OC-E and OC-A over a compressed diurnal
// day (raised-cosine load, trough 300 QPS, peak 3300 QPS). Diurnal
// patterns are where the paper expects "scale up, then out" to pay off
// most: the overclock absorbs the morning ramp and the evening decline
// without churning VMs. The zero Options reproduces the published run
// (seed 3, 3600 s day).
func DiurnalData(o Options) (DiurnalResult, error) {
	return DiurnalDataCtx(context.Background(), o)
}

// DiurnalDataCtx is DiurnalData honoring ctx: a cancelled context
// stops the in-flight policy simulation at the kernel's next event
// batch instead of finishing the simulated day. The three policy runs
// share only the read-only diurnal phase list, so they fan out
// through sweep.Map under o.Workers, each publishing telemetry into a
// per-policy child scope.
func DiurnalDataCtx(ctx context.Context, o Options) (DiurnalResult, error) {
	phases := autoscaler.DiurnalPhases(300, 3300, o.DurationOr(3600), 120)
	policies := []autoscaler.Policy{autoscaler.Baseline, autoscaler.OCE, autoscaler.OCA}
	results, err := sweep.Map(ctx, len(policies), sweep.Options{Workers: o.Workers, Tel: o.Tel},
		func(ctx context.Context, i int) (*autoscaler.Result, error) {
			cfg := autoscaler.DefaultConfig(policies[i], phases)
			cfg.Seed = o.SeedOr(3)
			cfg.Tel = o.Tel.Child(policies[i].String())
			return autoscaler.RunCtx(ctx, cfg)
		})
	if err != nil {
		return DiurnalResult{}, err
	}
	return DiurnalResult{Results: results}, nil
}

// Diurnal renders the diurnal-day comparison.
func Diurnal(o Options) (*Table, error) {
	res, err := DiurnalData(o)
	if err != nil {
		return nil, err
	}
	return diurnalTable(res), nil
}

// diurnalTable renders the policy rows.
func diurnalTable(res DiurnalResult) *Table {
	base := res.Results[0]
	t := &Table{
		Title:  "Extension — compressed diurnal day (300→3300→300 QPS raised cosine over 1 h)",
		Header: []string{"Policy", "Norm P95", "Max VMs", "VM×hours", "Energy/request", "Scale-outs/ins"},
		Notes: []string{
			"long-running services see this shape daily; OC-A rides the ramps with frequency",
			"instead of churning VMs",
		},
	}
	for _, r := range res.Results {
		t.AddRow(r.Policy.String(),
			F(r.P95LatencyS/base.P95LatencyS, 2),
			fmt.Sprintf("%d", r.MaxVMs),
			F(r.VMHours, 2),
			fmt.Sprintf("%.1f mJ", r.EnergyPerReqJ*1000),
			fmt.Sprintf("%d/%d", r.ScaleOuts, r.ScaleIns))
	}
	return t
}

func init() {
	registerTable("diurnal", 290, []string{"extension", "sim"},
		func(ctx context.Context, o Options) (*Table, error) {
			res, err := DiurnalDataCtx(ctx, o)
			if err != nil {
				return nil, err
			}
			return diurnalTable(res), nil
		})
}
