package experiments

// The experiments package and the control-plane API share one wire
// convention: snake_case names, omitempty on optional fields, and a
// version tag on every envelope. These tests pin the JSON forms so a
// drift in either direction breaks loudly.

import (
	"encoding/json"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"immersionoc/internal/api"
	"immersionoc/internal/telemetry"
)

func TestOptionsWireForm(t *testing.T) {
	// Zero options serialize to the empty object: every knob is
	// optional on the wire, matching the "zero value means defaults"
	// contract in Go.
	b, err := json.Marshal(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "{}" {
		t.Fatalf("zero Options = %s, want {}", b)
	}

	// Full options use the API's snake_case names; the telemetry scope
	// is process state and never crosses the wire.
	reg := telemetry.NewRegistry()
	o := Options{Seed: 42, DurationS: 3600, Workers: 4, Tel: reg.Scope("x")}
	b, err = json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seed":42,"duration_s":3600,"workers":4}`
	if string(b) != want {
		t.Fatalf("Options wire form = %s, want %s", b, want)
	}

	// And the form round-trips (minus the excluded scope).
	var back Options
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	o.Tel = nil
	if back != o {
		t.Fatalf("round trip = %+v, want %+v", back, o)
	}
}

func TestResultWireForm(t *testing.T) {
	r := Result{
		Name: "table5",
		Kind: KindTable,
		Tags: []string{"paper"},
		Table: &Table{
			Title:  "Example",
			Header: []string{"a", "b"},
			Rows:   [][]string{{"1", "2"}},
			Notes:  []string{"note"},
		},
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"version":"` + api.Version + `","name":"table5","kind":"table","tags":["paper"],` +
		`"title":"Example","header":["a","b"],"rows":[["1","2"]],"notes":["note"]}`
	if string(b) != want {
		t.Fatalf("Result wire form:\n got %s\nwant %s", b, want)
	}

	plot := Result{Name: "fig9", Kind: KindPlot, Plot: "art"}
	b, err = json.Marshal(plot)
	if err != nil {
		t.Fatal(err)
	}
	want = `{"version":"` + api.Version + `","name":"fig9","kind":"plot","text":"art"}`
	if string(b) != want {
		t.Fatalf("plot wire form:\n got %s\nwant %s", b, want)
	}
}

// TestWireConventionEverywhere walks every exported struct in the wire
// surface — all of internal/api plus the experiments envelope — and
// checks each exported field carries an explicit JSON tag in
// snake_case (or is explicitly excluded with "-").
func TestWireConventionEverywhere(t *testing.T) {
	snake := regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	check := func(typ reflect.Type) {
		t.Helper()
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if !f.IsExported() {
				continue
			}
			if f.Anonymous && f.Tag.Get("json") == "" {
				continue // embedded structs flatten; their fields are checked directly
			}
			tag := f.Tag.Get("json")
			if tag == "" {
				t.Errorf("%s.%s: missing json tag", typ.Name(), f.Name)
				continue
			}
			name := strings.Split(tag, ",")[0]
			if name == "-" {
				continue
			}
			if !snake.MatchString(name) {
				t.Errorf("%s.%s: json name %q is not snake_case", typ.Name(), f.Name, name)
			}
		}
	}

	for _, v := range []any{
		api.VMSpec{}, api.ServerRef{}, api.FilterRequest{}, api.FilterResponse{},
		api.FilterFailure{}, api.PrioritizeRequest{}, api.PrioritizeResponse{},
		api.HostScore{}, api.PlaceRequest{}, api.PlaceResponse{},
		api.RemoveRequest{}, api.RemoveResponse{}, api.OverclockGrantRequest{},
		api.OverclockDecision{}, api.StepRequest{}, api.StepResponse{},
		api.FleetStatus{}, api.ErrorResponse{},
		Options{}, resultJSON{},
	} {
		check(reflect.TypeOf(v))
	}
}
