package experiments

import (
	"context"
	"fmt"
	"sort"

	"immersionoc/internal/freq"
	"immersionoc/internal/power"
	"immersionoc/internal/queueing"
	"immersionoc/internal/rng"
	"immersionoc/internal/sim"
	"immersionoc/internal/stats"
	"immersionoc/internal/sweep"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/workload"
)

// BurstyLoad parameterizes the per-VM on-off modulated Poisson load
// used by the oversubscription experiments. Cloud OLTP traffic is
// bursty: a VM alternates between an "on" state with elevated arrival
// rate and a quiet state. Bursts overlapping across co-located VMs are
// what makes oversubscription hurt — and what overclocking absorbs.
type BurstyLoad struct {
	// AvgQPS is the long-run average arrival rate.
	AvgQPS float64
	// BurstFactor multiplies the rate during "on" periods.
	BurstFactor float64
	// OnMeanS and OffMeanS are exponential state durations. The on
	// fraction is OnMeanS/(OnMeanS+OffMeanS); the off-state rate is
	// set so the long-run average equals AvgQPS.
	OnMeanS, OffMeanS float64
}

// onRate and offRate derive the two state rates from the average.
func (b BurstyLoad) onRate() float64 { return b.AvgQPS * b.BurstFactor }

func (b BurstyLoad) offRate() float64 {
	onFrac := b.OnMeanS / (b.OnMeanS + b.OffMeanS)
	r := (b.AvgQPS - b.onRate()*onFrac) / (1 - onFrac)
	if r < 0 {
		r = 0
	}
	return r
}

// Schedule expands the on-off process into a piecewise-constant QPS
// schedule. Sharing one schedule across co-located VMs models the
// correlated load the paper's four SQL instances receive from a common
// benchmark driver — overlapping bursts are exactly the "need the same
// resources at the same time" event oversubscription gambles on.
func (b BurstyLoad) Schedule(seed uint64, duration float64) []queueing.LoadPhase {
	r := rng.New(seed)
	var phases []queueing.LoadPhase
	t, on := 0.0, false
	for t < duration {
		mean, rate := b.OffMeanS, b.offRate()
		if on {
			mean, rate = b.OnMeanS, b.onRate()
		}
		d := r.Exp(1 / mean)
		phases = append(phases, queueing.LoadPhase{QPS: rate, DurationS: d})
		t += d
		on = !on
	}
	return phases
}

// phaseSchedule is an expanded burst schedule shared read-only across
// sweep cells and VM drivers: the phases plus their precomputed
// cumulative end times, built once per grid instead of once per cell.
type phaseSchedule struct {
	phases []queueing.LoadPhase
	// ends[i] is the cumulative end time of phases[i], accumulated in
	// phase order (the same float additions the serial scan made, so
	// boundary comparisons are bit-identical).
	ends     []float64
	duration float64
}

// newPhaseSchedule precomputes the cumulative phase bounds.
func newPhaseSchedule(phases []queueing.LoadPhase, duration float64) *phaseSchedule {
	ends := make([]float64, len(phases))
	off := 0.0
	for i, p := range phases {
		off += p.DurationS
		ends[i] = off
	}
	return &phaseSchedule{phases: phases, ends: ends, duration: duration}
}

// phaseCursor is one driver's incremental position in a shared
// phaseSchedule — the same idiom as queueing.Generator's QPSAt
// cursor. Each VM driver queries monotonically increasing times, so
// lookup is amortized O(1); a backwards query falls back to binary
// search.
type phaseCursor struct {
	s   *phaseSchedule
	idx int
}

// at returns the scheduled rate at time t and the end of the phase t
// falls in (or the schedule duration when t is past the last phase).
func (c *phaseCursor) at(t float64) (qps, phaseEnd float64) {
	if c.idx > 0 && t < c.s.ends[c.idx-1] {
		c.idx = sort.Search(len(c.s.ends), func(i int) bool { return t < c.s.ends[i] })
	}
	for c.idx < len(c.s.ends) && t >= c.s.ends[c.idx] {
		c.idx++
	}
	if c.idx >= len(c.s.phases) {
		return 0, c.s.duration
	}
	return c.s.phases[c.idx].QPS, c.s.ends[c.idx]
}

// drivePhases schedules a Poisson arrival process for one VM following
// the given piecewise-constant schedule.
func drivePhases(eng *queueing.Engine, vm *queueing.VM, seed uint64, service queueing.ServiceSampler, sched *phaseSchedule) {
	r := rng.New(seed)
	cur := phaseCursor{s: sched}
	duration := sched.duration
	var arrive func(s *sim.Simulation)
	arrive = func(s *sim.Simulation) {
		now := float64(s.Now())
		if now >= duration {
			return
		}
		rate, phaseEnd := cur.at(now)
		if rate <= 0 {
			if phaseEnd > now && phaseEnd < duration {
				s.Schedule(sim.Time(phaseEnd), arrive)
			}
			return
		}
		vm.Submit(service(r))
		s.After(r.Exp(rate), arrive)
	}
	eng.Sim.After(r.Exp(10), arrive)
}

// Fig12Point is one bar of Figure 12.
type Fig12Point struct {
	Config string
	PCores int
	// MeanP95MS is the average of the four VMs' P95 latencies.
	MeanP95MS float64
	// AvgPowerW and P99PowerW are server power draws.
	AvgPowerW, P99PowerW float64
}

// Fig12Params holds the experiment's calibration knobs.
type Fig12Params struct {
	Seed      uint64
	DurationS float64
	WarmupS   float64
	VMs       int
	// Load is the per-VM arrival process; the per-VM average
	// utilization at B2 is AvgQPS × service mean / vcores.
	Load BurstyLoad
	// ServiceMeanS/ServiceCV describe SQL request demands at B2.
	ServiceMeanS, ServiceCV float64
	PCoreSteps              []int
	// IndependentBursts gives each VM its own burst schedule instead
	// of the shared (correlated) one. Used by the ablation showing
	// that correlated bursts are what makes oversubscription hurt.
	IndependentBursts bool
	// Tel is the telemetry scope the sweep's engines publish into
	// (nil disables collection). Each grid cell lands in a child
	// scope named <config>-<pcores>p.
	Tel *telemetry.Scope
	// Workers bounds the sweep's parallel cells (≤ 1 = serial).
	Workers int
}

// DefaultFig12Params reproduces the paper's setup: 4 SQL VMs of 4
// vcores, 8–16 pcores, B2 vs OC3.
func DefaultFig12Params() Fig12Params {
	return Fig12Params{
		Seed:      7,
		DurationS: 420,
		WarmupS:   30,
		VMs:       4,
		Load: BurstyLoad{
			AvgQPS:      225, // ρ ≈ 0.45 per vcore at B2
			BurstFactor: 1.82,
			OnMeanS:     3,
			OffMeanS:    3,
		},
		ServiceMeanS: 0.008,
		ServiceCV:    1.2,
		PCoreSteps:   []int{8, 10, 12, 14, 16},
	}
}

// fig12Schedules holds the burst schedules every grid cell shares:
// expanded once per sweep (not once per cell) and read immutably by
// each cell's VM drivers. perVM is nil unless IndependentBursts.
type fig12Schedules struct {
	shared *phaseSchedule
	perVM  []*phaseSchedule
}

// expandSchedules builds the grid's burst schedules from the
// calibrated load. The seeds match the original per-cell expansion,
// so hoisting changes no arrival times.
func expandSchedules(p Fig12Params) fig12Schedules {
	s := fig12Schedules{
		shared: newPhaseSchedule(p.Load.Schedule(p.Seed*977, p.DurationS), p.DurationS),
	}
	if p.IndependentBursts {
		s.perVM = make([]*phaseSchedule, p.VMs)
		for i := range s.perVM {
			s.perVM[i] = newPhaseSchedule(p.Load.Schedule(p.Seed*977+uint64(i)*7919, p.DurationS), p.DurationS)
		}
	}
	return s
}

// vmSchedule returns VM i's schedule: the shared correlated one, or
// its private one under IndependentBursts.
func (s fig12Schedules) vmSchedule(i int) *phaseSchedule {
	if s.perVM != nil {
		return s.perVM[i]
	}
	return s.shared
}

// runOversub simulates the SQL VMs on pcores physical cores under cfg
// and returns mean P95 latency plus power statistics. A cancelled ctx
// stops the simulation at the kernel's next event batch and returns
// the context error.
func runOversub(ctx context.Context, p Fig12Params, cfg freq.Config, pcores int, scheds fig12Schedules) (Fig12Point, error) {
	app := workload.SQL
	speed := 1 / app.ServiceTimeRatio(cfg)
	eng := queueing.NewEngine(app.ScalableFraction())
	eng.SetTelemetry(p.Tel)
	host := eng.NewHost(pcores)
	service := queueing.LogNormalService(p.ServiceMeanS, p.ServiceCV)

	// Sample counts are known up front: ~AvgQPS×duration requests per
	// VM (bursts redistribute arrivals, they don't change the mean)
	// and one power sample per second. Reserving here keeps the
	// latency digests from growing by doubling mid-run.
	perVM := int(p.Load.AvgQPS*p.DurationS) + 1024
	eng.AllLatency.Reserve(perVM * p.VMs)

	vms := make([]*queueing.VM, p.VMs)
	for i := range vms {
		vms[i] = host.NewVM(fmt.Sprintf("sql%d", i), app.Cores, speed)
		vms[i].Latency.Reserve(perVM)
		drivePhases(eng, vms[i], p.Seed+uint64(i)*101, service, scheds.vmSchedule(i))
	}

	powerDig := stats.NewDigest()
	powerDig.Reserve(int(p.DurationS) + 2)
	warmupDone := false
	eng.Sim.NewTicker(1, 1, func(s *sim.Simulation, t sim.Time) {
		now := float64(t)
		if now > p.DurationS {
			return
		}
		if !warmupDone && now >= p.WarmupS {
			for _, v := range vms {
				v.Latency.Reset()
			}
			warmupDone = true
		}
		runnable := 0
		for _, v := range vms {
			runnable += v.InService()
		}
		utilSum := float64(runnable)
		if utilSum > float64(pcores) {
			utilSum = float64(pcores)
		}
		powerDig.Add(power.Tank1Server.Power(cfg, utilSum, pcores))
	})

	if err := eng.Sim.RunUntilCtx(ctx, sim.Time(p.DurationS)); err != nil {
		return Fig12Point{}, err
	}

	var p95Sum float64
	for _, v := range vms {
		p95Sum += v.Latency.P95()
	}
	// Each sweep point discards its engine; recycle the sample blocks
	// for the next (pcores, config) cell.
	defer eng.ReleaseStats()
	defer powerDig.Release()
	return Fig12Point{
		Config:    cfg.Name,
		PCores:    pcores,
		MeanP95MS: p95Sum / float64(len(vms)) * 1000,
		AvgPowerW: powerDig.Mean(),
		P99PowerW: powerDig.P99(),
	}, nil
}

// withOptions applies the shared experiment options on top of the
// calibrated parameters.
func (p Fig12Params) withOptions(o Options) Fig12Params {
	p.Seed = o.SeedOr(p.Seed)
	p.DurationS = o.DurationOr(p.DurationS)
	p.Tel = o.Tel
	p.Workers = o.Workers
	return p
}

// Fig12Data runs the oversubscription sweep.
func Fig12Data(p Fig12Params) []Fig12Point {
	out, _ := Fig12DataCtx(context.Background(), p)
	return out
}

// Fig12DataCtx runs the oversubscription sweep. The grid's cells —
// (config, pcores) pairs — are independent simulations sharing only
// the read-only burst schedules, so they fan out through sweep.Map
// under p.Workers; results come back in grid order regardless of the
// worker count. Cancellation is honored both between points and inside
// each point's simulation (the kernel checks ctx every event batch),
// so a cancelled sweep returns promptly instead of finishing the
// in-flight run.
func Fig12DataCtx(ctx context.Context, p Fig12Params) ([]Fig12Point, error) {
	type cell struct {
		cfg    freq.Config
		pcores int
	}
	var cells []cell
	for _, cfg := range []freq.Config{freq.B2, freq.OC3} {
		for _, pc := range p.PCoreSteps {
			cells = append(cells, cell{cfg, pc})
		}
	}
	scheds := expandSchedules(p)
	return sweep.Map(ctx, len(cells), sweep.Options{Workers: p.Workers, Tel: p.Tel},
		func(ctx context.Context, i int) (Fig12Point, error) {
			c := cells[i]
			cp := p
			cp.Tel = p.Tel.Child(fmt.Sprintf("%s-%dp", c.cfg.Name, c.pcores))
			return runOversub(ctx, cp, c.cfg, c.pcores, scheds)
		})
}

// Fig12 renders the oversubscription latency experiment.
func Fig12() *Table {
	return fig12Table(Fig12Data(DefaultFig12Params()))
}

// fig12Table renders the sweep's points.
func fig12Table(data []Fig12Point) *Table {
	t := &Table{
		Title:  "Figure 12 — Average P95 latency of 4 SQL VMs (16 vcores) vs assigned pcores",
		Header: []string{"Config", "pcores", "Mean P95 (ms)", "Avg power", "P99 power"},
		Notes: []string{
			"paper: OC3 with 12 pcores within 1% of B2 with 16 pcores — 4 pcores freed;",
			"paper power: B2 120/130W avg (12/16p), OC3 160/173W; P99 126/140 vs 169/180W",
		},
	}
	for _, d := range data {
		t.AddRow(d.Config, fmt.Sprintf("%d", d.PCores), F(d.MeanP95MS, 2),
			fmt.Sprintf("%.0fW", d.AvgPowerW), fmt.Sprintf("%.0fW", d.P99PowerW))
	}
	return t
}

// Fig12Find returns the point for (configName, pcores).
func Fig12Find(data []Fig12Point, configName string, pcores int) (Fig12Point, bool) {
	for _, d := range data {
		if d.Config == configName && d.PCores == pcores {
			return d, true
		}
	}
	return Fig12Point{}, false
}

func init() {
	registerTable("fig12", 130, []string{"paper", "sim"},
		func(ctx context.Context, o Options) (*Table, error) {
			data, err := Fig12DataCtx(ctx, DefaultFig12Params().withOptions(o))
			if err != nil {
				return nil, err
			}
			return fig12Table(data), nil
		})
}
