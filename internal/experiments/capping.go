package experiments

import (
	"context"
	"fmt"

	"immersionoc/internal/capping"
	"immersionoc/internal/freq"
	"immersionoc/internal/power"
)

// CappingResult compares priority-aware and uniform capping under the
// same power emergency.
type CappingResult struct {
	BudgetW, DemandW float64
	// Per-group outcomes keyed by group name.
	Priority map[string]CappingOutcome
	Uniform  map[string]CappingOutcome
}

// CappingOutcome is one group's post-capping state.
type CappingOutcome struct {
	Priority   capping.Priority
	FreqGHz    float64
	PerfImpact float64
}

// cappingGroups builds the experiment's row: an overclocked fleet with
// a critical latency tier (whose overclock hides oversubscription), a
// production tier, a batch tier and harvest filler.
func cappingGroups() ([]*capping.Group, error) {
	ladder, err := freq.NewLadder(3.4, 4.1, 8)
	if err != nil {
		return nil, err
	}
	mk := func(name string, prio capping.Priority, servers int, util float64, sf float64) *capping.Group {
		return &capping.Group{
			Name:             name,
			Priority:         prio,
			Servers:          servers,
			UtilSum:          util,
			ActiveCores:      24,
			Model:            power.Tank1Server,
			Ladder:           ladder,
			Config:           freq.OC1,
			ScalableFraction: sf,
		}
	}
	return []*capping.Group{
		mk("critical-latency", capping.Critical, 10, 18, 0.85),
		mk("production", capping.Production, 14, 16, 0.75),
		mk("batch", capping.Batch, 10, 22, 0.80),
		mk("harvest", capping.Harvest, 6, 24, 0.80),
	}, nil
}

// CappingData runs the power-emergency comparison: the row's budget is
// set below the overclocked fleet's demand (a 6% breach, the kind of
// event oversubscribed power delivery produces) and both cappers
// resolve it.
func CappingData(breachFraction float64) (CappingResult, error) {
	run := func(uniform bool) (map[string]CappingOutcome, float64, float64, error) {
		groups, err := cappingGroups()
		if err != nil {
			return nil, 0, 0, err
		}
		ctl, err := capping.NewController(1e9, 50, groups...)
		if err != nil {
			return nil, 0, 0, err
		}
		demand := ctl.TotalPowerW()
		ctl.BudgetW = demand * (1 - breachFraction)
		if uniform {
			_, err = ctl.UniformEnforce()
		} else {
			_, err = ctl.Enforce()
		}
		if err != nil {
			return nil, 0, 0, err
		}
		out := make(map[string]CappingOutcome, len(groups))
		for _, g := range groups {
			out[g.Name] = CappingOutcome{
				Priority:   g.Priority,
				FreqGHz:    float64(g.FreqGHz()),
				PerfImpact: g.PerfImpact(),
			}
		}
		return out, ctl.BudgetW, demand, nil
	}
	prio, budget, demand, err := run(false)
	if err != nil {
		return CappingResult{}, err
	}
	uni, _, _, err := run(true)
	if err != nil {
		return CappingResult{}, err
	}
	return CappingResult{BudgetW: budget, DemandW: demand, Priority: prio, Uniform: uni}, nil
}

// Capping renders the §IV priority-capping experiment.
func Capping() (*Table, error) {
	res, err := CappingData(0.06)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("§IV — Priority-aware capping under a power breach (%.0f W demand, %.0f W budget)",
			res.DemandW, res.BudgetW),
		Header: []string{"Group", "Priority", "Priority-aware freq / impact", "Uniform freq / impact"},
		Notes: []string{
			"the paper: use workload-priority-based capping so overclocked/critical workloads",
			"keep their frequency when oversubscribed power delivery hits its limits",
		},
	}
	for _, name := range []string{"critical-latency", "production", "batch", "harvest"} {
		p := res.Priority[name]
		u := res.Uniform[name]
		t.AddRow(name, p.Priority.String(),
			fmt.Sprintf("%.2f GHz / %s", p.FreqGHz, Pct(-p.PerfImpact)),
			fmt.Sprintf("%.2f GHz / %s", u.FreqGHz, Pct(-u.PerfImpact)))
	}
	return t, nil
}

func init() {
	registerTable("capping", 210, []string{"extension"},
		func(ctx context.Context, o Options) (*Table, error) { return Capping() })
}
