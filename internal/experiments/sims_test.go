package experiments

import (
	"testing"

	"immersionoc/internal/vm"
)

// shortFig12Params shrinks the run for CI while keeping the regime.
func shortFig12Params() Fig12Params {
	p := DefaultFig12Params()
	p.DurationS = 180
	return p
}

func TestFig12Shape(t *testing.T) {
	p := shortFig12Params()
	if testing.Short() {
		p.DurationS = 90
		p.PCoreSteps = []int{12, 16}
	}
	data := Fig12Data(p)
	// Latency decreases with pcores within each config.
	for _, cfgName := range []string{"B2", "OC3"} {
		prev := -1.0
		for _, pc := range p.PCoreSteps {
			d, ok := Fig12Find(data, cfgName, pc)
			if !ok {
				t.Fatalf("missing point %s/%d", cfgName, pc)
			}
			if d.MeanP95MS <= 0 {
				t.Fatalf("%s/%d: non-positive P95", cfgName, pc)
			}
			if prev > 0 && d.MeanP95MS > prev*1.10 {
				t.Errorf("%s: P95 rose from %v to %v with more pcores", cfgName, prev, d.MeanP95MS)
			}
			prev = d.MeanP95MS
		}
	}
	// OC3 beats B2 at equal pcores.
	for _, pc := range p.PCoreSteps {
		b, _ := Fig12Find(data, "B2", pc)
		o, _ := Fig12Find(data, "OC3", pc)
		if o.MeanP95MS >= b.MeanP95MS {
			t.Errorf("pcores %d: OC3 P95 %v not below B2 %v", pc, o.MeanP95MS, b.MeanP95MS)
		}
		if o.AvgPowerW <= b.AvgPowerW {
			t.Errorf("pcores %d: OC3 power not above B2", pc)
		}
	}
}

func TestFig12HeadlineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 12 run in -short mode")
	}
	data := Fig12Data(DefaultFig12Params())
	b16, _ := Fig12Find(data, "B2", 16)
	o12, _ := Fig12Find(data, "OC3", 12)
	// Paper: OC3 with 12 pcores within 1% of B2 with 16; our
	// reproduction holds within 10%.
	ratio := o12.MeanP95MS / b16.MeanP95MS
	if ratio > 1.10 || ratio < 0.80 {
		t.Fatalf("OC3@12 / B2@16 = %v, want ≈1 (4 pcores freed)", ratio)
	}
}

func TestFig12PowerCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 12 run in -short mode")
	}
	data := Fig12Data(DefaultFig12Params())
	cases := []struct {
		cfg    string
		pcores int
		avg    float64
	}{
		{"B2", 12, 120}, {"B2", 16, 130}, {"OC3", 12, 160}, {"OC3", 16, 173},
	}
	for _, c := range cases {
		d, _ := Fig12Find(data, c.cfg, c.pcores)
		if d.AvgPowerW < c.avg*0.85 || d.AvgPowerW > c.avg*1.15 {
			t.Errorf("%s@%d avg power %v, paper %v (±15%%)", c.cfg, c.pcores, d.AvgPowerW, c.avg)
		}
		if d.P99PowerW < d.AvgPowerW {
			t.Errorf("%s@%d: P99 below average power", c.cfg, c.pcores)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("Figure 13 scenarios in -short mode")
	}
	p := DefaultFig13Params()
	p.DurationS = 180
	cells := Fig13Data(p)
	if len(cells) != 30 {
		t.Fatalf("%d cells, want 30 (3 scenarios × 5 VMs × 2 configs)", len(cells))
	}
	for _, c := range cells {
		switch c.Config {
		case "B2-oversub":
			// Oversubscribing the baseline degrades performance.
			if c.Improvement > 0.02 {
				t.Errorf("%s %s#%d B2-oversub improved %v", c.Scenario, c.App, c.Instance, c.Improvement)
			}
		case "OC3-oversub":
			// Overclocking turns the degradation into a gain.
			if c.Improvement < 0 {
				t.Errorf("%s %s#%d OC3-oversub degraded %v", c.Scenario, c.App, c.Instance, c.Improvement)
			}
			if c.Improvement > 0.20 {
				t.Errorf("%s %s#%d OC3-oversub gain %v beyond paper range", c.Scenario, c.App, c.Instance, c.Improvement)
			}
		}
	}
	// SQL suffers the worst under plain oversubscription (latency-
	// sensitive apps degrade most).
	worstApp, worst := "", 1.0
	for _, c := range cells {
		if c.Config == "B2-oversub" && c.Improvement < worst {
			worst, worstApp = c.Improvement, c.App
		}
	}
	if worstApp != "SQL" {
		t.Errorf("worst-degraded app %s, want SQL", worstApp)
	}
}

func TestTableXScenarios(t *testing.T) {
	scs := TableX()
	if len(scs) != 3 {
		t.Fatalf("%d scenarios", len(scs))
	}
	for _, s := range scs {
		if s.VCores() != 20 {
			t.Errorf("%s: %d vcores, want 20", s.Name, s.VCores())
		}
	}
	if scs[0].TeraSort != 2 || scs[1].SPECJBB != 2 || scs[2].SQL != 2 {
		t.Fatal("scenario mixes disagree with Table X")
	}
}

func TestPackingDensityGain(t *testing.T) {
	trace := vm.DefaultTrace
	trace.ArrivalRatePerS = 0.012
	res := PackingData(24, trace, 0.25)
	// Paper: ~20% packing density improvement.
	if res.DensityGain < 0.15 || res.DensityGain > 0.30 {
		t.Fatalf("density gain %v, want ~0.20-0.25", res.DensityGain)
	}
	if res.OversubRejected >= res.BaselineRejected {
		t.Fatal("oversubscription did not reduce rejections")
	}
	if res.AtRisk != 0 {
		t.Fatalf("%d servers exceed overclocked capacity", res.AtRisk)
	}
}

func TestBuffersVirtualSellsMore(t *testing.T) {
	trace := vm.DefaultTrace
	trace.ArrivalRatePerS = 0.25
	trace.DurationS = 24 * 3600
	trace.MeanLifetimeS = 48 * 3600
	res := BuffersData(20, 2, 0.10, trace)
	if res.VirtualSellable <= res.StaticSellable {
		t.Fatalf("virtual buffer sells %d ≤ static %d", res.VirtualSellable, res.StaticSellable)
	}
	if res.StaticRecovered < 0.99 {
		t.Fatalf("static buffer recovered only %v", res.StaticRecovered)
	}
	if res.VirtualRecovered < 0.90 {
		t.Fatalf("virtual buffer recovered only %v", res.VirtualRecovered)
	}
	if res.Displaced == 0 {
		t.Fatal("no VMs displaced by the failure")
	}
}

func TestCapacityCrisisMitigation(t *testing.T) {
	trace := vm.DefaultTrace
	trace.Seed = 99
	trace.ArrivalRatePerS = 0.012
	trace.DurationS = 2 * 24 * 3600
	trace.MeanLifetimeS = 24 * 3600
	res := CapacityCrisisData(16, trace)
	if res.DemandVCores <= res.SupplyPCores {
		t.Fatal("trace does not create a capacity crisis")
	}
	if res.DeniedOC >= res.DeniedBaseline {
		t.Fatalf("overclocking-backed fleet denied %d ≥ baseline %d", res.DeniedOC, res.DeniedBaseline)
	}
}

func TestFig15AndTableXIRender(t *testing.T) {
	if testing.Short() {
		t.Skip("auto-scaler renders in -short mode")
	}
	if _, err := Fig15(Options{}); err != nil {
		t.Fatal(err)
	}
	tbl, res, err := TableXI(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("Table XI rows %d", len(tbl.Rows))
	}
	if res.OCA.MaxVMs >= res.Baseline.MaxVMs {
		t.Errorf("OC-A max VMs %d not below baseline %d", res.OCA.MaxVMs, res.Baseline.MaxVMs)
	}
}
