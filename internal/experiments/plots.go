package experiments

import (
	"context"
	"fmt"
	"strings"

	"immersionoc/internal/plot"
	"immersionoc/internal/stats"
)

// PlotFig15 renders the Figure 15 validation run as ASCII charts:
// utilization (controlled vs baseline) and the frequency fraction.
func PlotFig15(ctx context.Context, o Options) (string, error) {
	res, err := Fig15DataCtx(ctx, o)
	if err != nil {
		return "", err
	}
	model := res.WithModel.Util
	model.Name = "util (model)"
	baseline := res.Baseline.Util
	baseline.Name = "util (baseline)"
	freqS := res.WithModel.FreqFrac
	freqS.Name = "freq fraction"
	var b strings.Builder
	b.WriteString(plot.Lines("Figure 15 — utilization under load steps 1000/2000/500/3000/1000 QPS", 72, 12, model, baseline))
	b.WriteString("\n")
	b.WriteString(plot.Lines("Figure 15 — frequency (fraction of B2→OC1 range)", 72, 8, freqS))
	return b.String(), nil
}

// PlotFig16 renders the Figure 16 utilization and VM-count traces for
// the three auto-scaler policies.
func PlotFig16(ctx context.Context, o Options) (string, error) {
	res, err := TableXIDataCtx(ctx, o)
	if err != nil {
		return "", err
	}
	nameSeries := func(s *stats.Series, name string) *stats.Series {
		s.Name = name
		return s
	}
	var b strings.Builder
	b.WriteString(plot.Lines("Figure 16 — utilization (ramp 500→4000 QPS)", 72, 12,
		nameSeries(res.Baseline.Util, "baseline"),
		nameSeries(res.OCE.Util, "OC-E"),
		nameSeries(res.OCA.Util, "OC-A")))
	b.WriteString("\n")
	b.WriteString(plot.Lines("Figure 16 — deployed VMs", 72, 8,
		nameSeries(res.Baseline.VMs, "baseline"),
		nameSeries(res.OCA.VMs, "OC-A")))
	return b.String(), nil
}

// PlotFig12 renders the Figure 12 oversubscription sweep as latency
// bars (log-like compression via labels, linear bars).
func PlotFig12(ctx context.Context, o Options) (string, error) {
	data, err := Fig12DataCtx(ctx, DefaultFig12Params().withOptions(o))
	if err != nil {
		return "", err
	}
	var labels []string
	var values []float64
	for _, d := range data {
		labels = append(labels, fmt.Sprintf("%s @%2dp", d.Config, d.PCores))
		values = append(values, d.MeanP95MS)
	}
	return plot.Bars("Figure 12 — mean P95 latency (ms), 4 SQL VMs on shared pcores", 50, labels, values), nil
}

// PlotDiurnal renders the diurnal-day comparison.
func PlotDiurnal(ctx context.Context, o Options) (string, error) {
	res, err := DiurnalDataCtx(ctx, o)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	base := res.Results[0]
	oca := res.Results[2]
	base.Util.Name = "baseline util"
	oca.Util.Name = "OC-A util"
	b.WriteString(plot.Lines("Diurnal day — utilization", 72, 10, base.Util, oca.Util))
	b.WriteString("\n")
	base.VMs.Name = "baseline VMs"
	oca.VMs.Name = "OC-A VMs"
	b.WriteString(plot.Lines("Diurnal day — deployed VMs", 72, 8, base.VMs, oca.VMs))
	return b.String(), nil
}

func init() {
	registerPlot("plot-fig12", 400, []string{"plot", "sim"},
		func(ctx context.Context, o Options) (string, error) { return PlotFig12(ctx, o) })
	registerPlot("plot-fig15", 410, []string{"plot", "sim"},
		func(ctx context.Context, o Options) (string, error) { return PlotFig15(ctx, o) })
	registerPlot("plot-fig16", 420, []string{"plot", "sim"},
		func(ctx context.Context, o Options) (string, error) { return PlotFig16(ctx, o) })
	registerPlot("plot-diurnal", 430, []string{"plot", "sim"},
		func(ctx context.Context, o Options) (string, error) { return PlotDiurnal(ctx, o) })
}
