package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bbbb"}, Notes: []string{"n"}}
	tbl.AddRow("x", "y")
	out := tbl.String()
	for _, want := range []string{"T\n", "a", "bbbb", "x", "y", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if F(1.2345, 2) != "1.23" {
		t.Fatal("F wrong")
	}
	if Pct(0.123) != "+12.3%" || Pct(-0.07) != "-7.0%" {
		t.Fatalf("Pct wrong: %s %s", Pct(0.123), Pct(-0.07))
	}
}

func TestTableISmoke(t *testing.T) {
	tbl := TableI()
	if len(tbl.Rows) != 6 {
		t.Fatalf("Table I rows %d", len(tbl.Rows))
	}
}

func TestTableIISmoke(t *testing.T) {
	tbl := TableII()
	if len(tbl.Rows) != 4 {
		t.Fatalf("Table II rows %d", len(tbl.Rows))
	}
}

func TestTableIIIReproduction(t *testing.T) {
	rows, err := TableIIIData()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper values (Tj, turbo) per (platform, cooling).
	want := []struct{ tj, turbo float64 }{
		{92, 3.1}, {75, 3.2}, {90, 2.6}, {68, 2.7},
	}
	for i, r := range rows {
		if math.Abs(r.TjC-want[i].tj) > 2 {
			t.Errorf("row %d Tj %v, want %v±2", i, r.TjC, want[i].tj)
		}
		if math.Abs(r.MaxTurboGHz-want[i].turbo) > 1e-9 {
			t.Errorf("row %d turbo %v, want %v", i, r.MaxTurboGHz, want[i].turbo)
		}
	}
	if _, err := TableIII(); err != nil {
		t.Fatal(err)
	}
}

func TestTableVReproduction(t *testing.T) {
	rows, err := TableVData()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper: 5y / <1y / >10y / ~4y / >10y / ~5y.
	checks := []struct{ lo, hi float64 }{
		{4.5, 5.5}, {0, 1.0}, {10, 1e9}, {3.2, 4.8}, {10, 1e9}, {4.3, 5.7},
	}
	for i, r := range rows {
		if r.Lifetime < checks[i].lo || r.Lifetime > checks[i].hi {
			t.Errorf("row %d (%s OC=%v): lifetime %.2f, want [%v,%v]",
				i, r.Cooling, r.Overclocked, r.Lifetime, checks[i].lo, checks[i].hi)
		}
	}
}

func TestPowerSavingsNear182W(t *testing.T) {
	sb, tbl, err := PowerSavings()
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
	if math.Abs(sb.Total()-182) > 10 {
		t.Fatalf("savings %v, want ~182 W", sb.Total())
	}
}

func TestTableVIReproduction(t *testing.T) {
	_, air, nonOC, oc, err := TableVIData()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(air.Total()-1) > 1e-9 {
		t.Fatal("air baseline not normalized")
	}
	if math.Abs(nonOC.Total()-0.93) > 0.005 {
		t.Fatalf("non-OC total %v, want 0.93", nonOC.Total())
	}
	if math.Abs(oc.Total()-0.96) > 0.005 {
		t.Fatalf("OC total %v, want 0.96", oc.Total())
	}
	if _, err := TableVI(); err != nil {
		t.Fatal(err)
	}
}

func TestOversubTCOReproduction(t *testing.T) {
	_, ocS, nonS, err := OversubTCO()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ocS.VsAir-0.13) > 0.01 {
		t.Fatalf("OC oversub vs air %v, want ~13%%", ocS.VsAir)
	}
	if math.Abs(nonS.VsSelf-0.091) > 0.015 {
		t.Fatalf("non-OC oversub vs self %v, want ~10%%", nonS.VsSelf)
	}
}

func TestFig4Smoke(t *testing.T) {
	tbl := Fig4()
	if len(tbl.Rows) != 5 {
		t.Fatalf("Fig 4 rows %d", len(tbl.Rows))
	}
}

func TestStabilityReportSmoke(t *testing.T) {
	tbl := StabilityReport()
	if len(tbl.Rows) != 3 {
		t.Fatalf("stability rows %d", len(tbl.Rows))
	}
}

func TestFig9Reproduction(t *testing.T) {
	cells := Fig9Data()
	if len(cells) != 8*4 {
		t.Fatalf("%d cells", len(cells))
	}
	for _, c := range cells {
		if c.Config == "B2" {
			if math.Abs(c.Improvement) > 1e-9 {
				t.Errorf("%s B2 improvement %v", c.App, c.Improvement)
			}
			continue
		}
		if c.Improvement <= 0 {
			t.Errorf("%s %s: non-positive improvement", c.App, c.Config)
		}
		if c.Improvement > 0.30 {
			t.Errorf("%s %s: improvement %v beyond the paper's range", c.App, c.Config, c.Improvement)
		}
		if c.P99PowerW < c.AvgPowerW {
			t.Errorf("%s %s: P99 power below average", c.App, c.Config)
		}
	}
}

func TestFig10Reproduction(t *testing.T) {
	cells := Fig10Data()
	if len(cells) != 4*7 {
		t.Fatalf("%d cells", len(cells))
	}
	for _, c := range cells {
		switch c.Config {
		case "B4":
			if math.Abs(c.VsB1-0.17) > 0.02 {
				t.Errorf("%s B4 gain %v, want ~17%%", c.Kernel, c.VsB1)
			}
		case "OC3":
			if math.Abs(c.VsB1-0.24) > 0.02 {
				t.Errorf("%s OC3 gain %v, want ~24%%", c.Kernel, c.VsB1)
			}
		}
	}
}

func TestFig11Reproduction(t *testing.T) {
	cells := Fig11Data()
	if len(cells) != 6*4 {
		t.Fatalf("%d cells", len(cells))
	}
	var basePower, ocPower float64
	for _, c := range cells {
		if c.Model == "VGG16" && c.Config == "Base" {
			basePower = c.P99PowerW
		}
		if c.Model == "VGG16" && c.Config == "OCG3" {
			ocPower = c.P99PowerW
		}
		if c.Improvement < 0 || c.Improvement > 0.16 {
			t.Errorf("%s %s: improvement %v outside [0, ~15%%]", c.Model, c.Config, c.Improvement)
		}
	}
	if math.Abs(basePower-193) > 6 || math.Abs(ocPower-231) > 8 {
		t.Errorf("P99 power %v → %v, want 193 → 231", basePower, ocPower)
	}
}
