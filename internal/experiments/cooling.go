package experiments

import (
	"context"
	"fmt"

	"immersionoc/internal/power"
	"immersionoc/internal/reliability"
	"immersionoc/internal/sweep"
	"immersionoc/internal/thermal"
)

// CoolingRow summarizes one cooling technology's overclocking
// capability for a Xeon socket.
type CoolingRow struct {
	Tech          string
	TjNominalC    float64
	TjOverclockC  float64
	OCLifetime    float64
	OCDutyCycle   float64
	SustainedOCOK bool
}

// CoolingOptions returns the per-socket thermal models entering the
// comparison.
func CoolingOptions() []struct {
	Name  string
	Model thermal.Model
} {
	return []struct {
		Name  string
		Model thermal.Model
	}{
		{"Air (direct evaporative)", thermal.XeonTableV.Air},
		{"CPU cold plate", thermal.ColdPlateXeon},
		{"1PIC", thermal.OnePhaseXeon},
		{"2PIC FC-3284", thermal.XeonTableV.Immersion},
		{"2PIC HFE-7000", thermal.XeonTableVHFE.Immersion},
	}
}

// CoolingComparisonData evaluates each §II cooling option at the
// nominal and overclocked socket operating points: junction
// temperatures, the overclocked lifetime, and the sustainable
// overclocking duty cycle within the 5-year budget. It quantifies the
// paper's argument that liquid cooling — and 2PIC in particular —
// unlocks sustained overclocking.
func CoolingComparisonData() ([]CoolingRow, error) {
	return CoolingComparisonDataCtx(context.Background(), Options{})
}

// CoolingComparisonDataCtx is CoolingComparisonData with the
// technology rows fanned out through sweep.Map under o.Workers: each
// cell evaluates one cooling model, so row order is the CoolingOptions
// order regardless of worker count.
func CoolingComparisonDataCtx(ctx context.Context, o Options) ([]CoolingRow, error) {
	opts := CoolingOptions()
	return sweep.Map(ctx, len(opts), sweep.Options{Workers: o.Workers, Tel: o.Tel},
		func(ctx context.Context, i int) (CoolingRow, error) {
			c := opts[i]
			nom, err := c.Model.JunctionTemp(power.NominalSocketW)
			if err != nil {
				return CoolingRow{}, err
			}
			oc, err := c.Model.JunctionTemp(power.OverclockedSocketW)
			if err != nil {
				return CoolingRow{}, err
			}
			nominal := reliability.Condition{VoltageV: power.NominalVoltage, TjMaxC: nom, TjMinC: c.Model.IdleTemp()}
			ocCond := reliability.Condition{VoltageV: power.OverclockedVoltage, TjMaxC: oc, TjMinC: c.Model.IdleTemp()}
			life, err := reliability.Composite5nm.Lifetime(ocCond)
			if err != nil {
				return CoolingRow{}, err
			}
			duty, err := reliability.Composite5nm.MaxOCDutyCycle(nominal, ocCond, reliability.ServiceLifeYears)
			if err != nil {
				return CoolingRow{}, err
			}
			return CoolingRow{
				Tech:          c.Name,
				TjNominalC:    nom,
				TjOverclockC:  oc,
				OCLifetime:    life,
				OCDutyCycle:   duty,
				SustainedOCOK: life >= reliability.ServiceLifeYears,
			}, nil
		})
}

// CoolingComparison renders the §II technology comparison for
// overclocking.
func CoolingComparison() (*Table, error) {
	return coolingComparisonCtx(context.Background(), Options{})
}

// coolingComparisonCtx renders the comparison from a sweep run.
func coolingComparisonCtx(ctx context.Context, o Options) (*Table, error) {
	rows, err := CoolingComparisonDataCtx(ctx, o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "§II — Which cooling technologies sustain the 305 W / 0.98 V overclock?",
		Header: []string{"Technology", "Tj @205W", "Tj @305W", "OC lifetime", "OC duty cycle", "Sustained OC"},
		Notes: []string{
			"air cannot hold the overclock at all; 1PIC and FC-3284 sustain it part-time;",
			"cold plates and HFE-7000 sustain it full-time — but cold plates cool only the",
			"plated part (the rest of the server stays on air) and carry the per-SKU",
			"engineering cost that §II argues makes 2PIC the better platform",
		},
	}
	for _, r := range rows {
		ok := "no"
		if r.SustainedOCOK {
			ok = "yes"
		}
		t.AddRow(r.Tech,
			fmt.Sprintf("%.0f°C", r.TjNominalC),
			fmt.Sprintf("%.0f°C", r.TjOverclockC),
			fmt.Sprintf("%.1f y", r.OCLifetime),
			fmt.Sprintf("%.0f%%", r.OCDutyCycle*100),
			ok)
	}
	return t, nil
}

func init() {
	registerTable("cooling", 300, []string{"extension", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return coolingComparisonCtx(ctx, o) })
}
