package experiments

import (
	"context"
	"fmt"

	"immersionoc/internal/freq"
	"immersionoc/internal/power"
	"immersionoc/internal/sweep"
	"immersionoc/internal/workload"
)

// Fig9Cell is one (application, configuration) measurement of
// Figure 9.
type Fig9Cell struct {
	App    string
	Config string
	// MetricRatio is metric(config)/metric(B2).
	MetricRatio float64
	// Improvement is the fractional improvement over B2.
	Improvement float64
	// AvgPowerW and P99PowerW are server power draws.
	AvgPowerW, P99PowerW float64
}

// Fig9Configs are the configurations plotted in Figure 9 (baseline
// plus the three overclocking combinations).
func Fig9Configs() []freq.Config {
	return []freq.Config{freq.B2, freq.OC1, freq.OC2, freq.OC3}
}

// Fig9Data evaluates the high-performance-VM experiment: each Table IX
// cloud application run alone under B2, OC1, OC2 and OC3.
func Fig9Data() []Fig9Cell {
	cells, _ := Fig9DataCtx(context.Background(), Options{})
	return cells
}

// Fig9DataCtx is Fig9Data with the application rows fanned out
// through sweep.Map under o.Workers: each cell evaluates one
// application across all four configurations, so row order is the
// application order regardless of worker count.
func Fig9DataCtx(ctx context.Context, o Options) ([]Fig9Cell, error) {
	apps := workload.Figure9Apps()
	rows, err := sweep.Map(ctx, len(apps), sweep.Options{Workers: o.Workers, Tel: o.Tel},
		func(ctx context.Context, i int) ([]Fig9Cell, error) {
			app := apps[i]
			var cells []Fig9Cell
			for _, cfg := range Fig9Configs() {
				avg, p99 := app.ServerPower(power.Tank1Server, cfg)
				cells = append(cells, Fig9Cell{
					App:         app.Name,
					Config:      cfg.Name,
					MetricRatio: app.MetricRatio(cfg),
					Improvement: app.Improvement(cfg),
					AvgPowerW:   avg,
					P99PowerW:   p99,
				})
			}
			return cells, nil
		})
	if err != nil {
		return nil, err
	}
	var cells []Fig9Cell
	for _, r := range rows {
		cells = append(cells, r...)
	}
	return cells, nil
}

// Fig9 renders the Figure 9 reproduction.
func Fig9() *Table {
	t, _ := fig9TableCtx(context.Background(), Options{})
	return t
}

// fig9TableCtx renders the Figure 9 reproduction from a sweep run.
func fig9TableCtx(ctx context.Context, o Options) (*Table, error) {
	data, err := Fig9DataCtx(ctx, o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 9 — Normalized metric and server power per application and configuration",
		Header: []string{"App", "Config", "Norm metric", "Improvement", "Avg power", "P99 power"},
		Notes: []string{
			"paper: overclocking improves all apps 10–25%; OC1 best except TeraSort & DiskSpeed;",
			"OC2 accelerates Pmbench/DiskSpeed; OC3 helps memory-bound SQL most; BI gains only from OC1",
		},
	}
	for _, c := range data {
		t.AddRow(c.App, c.Config, F(c.MetricRatio, 3), Pct(c.Improvement),
			fmt.Sprintf("%.0fW", c.AvgPowerW), fmt.Sprintf("%.0fW", c.P99PowerW))
	}
	return t, nil
}

// Fig10Cell is one (kernel, configuration) STREAM measurement.
type Fig10Cell struct {
	Kernel string
	Config string
	// BandwidthMBs is sustainable bandwidth.
	BandwidthMBs float64
	// VsB1 is the gain over the B1 baseline.
	VsB1 float64
	// PowerW is average server power.
	PowerW float64
}

// Fig10Data evaluates STREAM under all seven Table VII configurations.
func Fig10Data() []Fig10Cell {
	m := workload.DefaultStream
	var cells []Fig10Cell
	for _, k := range workload.StreamKernels() {
		for _, cfg := range freq.TableVII() {
			cells = append(cells, Fig10Cell{
				Kernel:       k.String(),
				Config:       cfg.Name,
				BandwidthMBs: m.Bandwidth(k, cfg),
				VsB1:         m.Improvement(k, freq.B1, cfg),
				PowerW:       m.Power(power.Tank1Server, cfg),
			})
		}
	}
	return cells
}

// Fig10 renders the STREAM reproduction.
func Fig10() *Table {
	t := &Table{
		Title:  "Figure 10 — STREAM sustainable bandwidth and power per configuration",
		Header: []string{"Kernel", "Config", "Bandwidth (MB/s)", "vs B1", "Power"},
		Notes:  []string{"paper: B4 +17% and OC3 +24% over B1; ~10% average power increase"},
	}
	for _, c := range Fig10Data() {
		t.AddRow(c.Kernel, c.Config, F(c.BandwidthMBs, 0), Pct(c.VsB1), fmt.Sprintf("%.0fW", c.PowerW))
	}
	return t
}

// Fig11Cell is one (model, configuration) GPU training measurement.
type Fig11Cell struct {
	Model  string
	Config string
	// TimeRatio is training time normalized to the stock config.
	TimeRatio float64
	// Improvement is 1 − TimeRatio.
	Improvement float64
	// AvgPowerW and P99PowerW are board powers.
	AvgPowerW, P99PowerW float64
}

// Fig11Data evaluates the six VGG models under the four Table VIII
// GPU configurations.
func Fig11Data() []Fig11Cell {
	pm := workload.DefaultGPUPower
	var cells []Fig11Cell
	for _, m := range workload.VGGModels() {
		for _, cfg := range freq.TableVIII() {
			cells = append(cells, Fig11Cell{
				Model:       m.Name,
				Config:      cfg.Name,
				TimeRatio:   m.TimeRatio(cfg),
				Improvement: m.Improvement(cfg),
				AvgPowerW:   pm.Average(cfg),
				P99PowerW:   pm.P99(cfg),
			})
		}
	}
	return cells
}

// Fig11 renders the GPU overclocking reproduction.
func Fig11() *Table {
	t := &Table{
		Title:  "Figure 11 — Normalized VGG training time and GPU power per configuration",
		Header: []string{"Model", "Config", "Norm time", "Improvement", "Avg power", "P99 power"},
		Notes: []string{
			"paper: up to 15% faster; VGG16B gains little past OCG1; P99 power 193W → 231W (+19%)",
		},
	}
	for _, c := range Fig11Data() {
		t.AddRow(c.Model, c.Config, F(c.TimeRatio, 3), Pct(c.Improvement),
			fmt.Sprintf("%.0fW", c.AvgPowerW), fmt.Sprintf("%.0fW", c.P99PowerW))
	}
	return t
}

func init() {
	registerTable("fig9", 100, []string{"paper", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return fig9TableCtx(ctx, o) })
	registerTable("fig10", 110, []string{"paper", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return Fig10(), nil })
	registerTable("fig11", 120, []string{"paper", "fast"},
		func(ctx context.Context, o Options) (*Table, error) { return Fig11(), nil })
}
