package experiments

import (
	"context"
	"fmt"

	"immersionoc/internal/dcsim"
	"immersionoc/internal/sweep"
)

// FleetSim runs the full-stack integration simulation — placement,
// overclock decisions, tank thermals, feeder capping and wear — over a
// two-day trace, at two load levels.
func FleetSim() (*Table, error) {
	return FleetSimCtx(context.Background(), Options{})
}

// FleetSimCtx is FleetSim honoring ctx and Options: a cancelled
// context stops the in-flight fleet simulation at its next control
// step. The two load levels are independent runs, so they fan out
// through sweep.Map under o.Workers, each publishing telemetry into a
// per-load child scope of o.Tel.
func FleetSimCtx(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		Title:  "Integration — full-stack fleet simulation (3 tanks × 12 blades, 2-day trace)",
		Header: []string{"Load", "Peak density", "Rejected", "Peak OC", "OC srv-hours", "Max bath", "Cap events", "Wear vs schedule"},
		Notes: []string{
			"the paper's mechanisms interacting: the placer oversubscribes, the governor",
			"overclocks pressured servers, tanks meter their condenser budgets, the feeder",
			"cancels overclocks it cannot power, and every hour lands on the wear budget",
		},
	}
	loads := []struct {
		name string
		rate float64
		life float64
	}{
		{"moderate", 0.010, 10 * 3600},
		{"heavy", 0.035, 20 * 3600},
	}
	reports, err := sweep.Map(ctx, len(loads), sweep.Options{Workers: o.Workers, Tel: o.Tel},
		func(ctx context.Context, i int) (*dcsim.Report, error) {
			cfg := dcsim.DefaultConfig()
			cfg.Trace.ArrivalRatePerS = loads[i].rate
			cfg.Trace.MeanLifetimeS = loads[i].life
			cfg.Trace.Seed = o.SeedOr(cfg.Trace.Seed)
			cfg.Tel = o.Tel.Child(loads[i].name)
			return dcsim.RunCtx(ctx, cfg)
		})
	if err != nil {
		return nil, err
	}
	for i, rep := range reports {
		t.AddRow(loads[i].name,
			F(rep.PeakDensity, 3),
			fmt.Sprintf("%d", rep.Rejected),
			fmt.Sprintf("%d", rep.PeakOverclocked),
			F(rep.OverclockServerHours, 1),
			fmt.Sprintf("%.1f°C", rep.MaxBathC),
			fmt.Sprintf("%d (%d cancelled)", rep.CapEvents, rep.CancelledOverclocks),
			fmt.Sprintf("%.2f×", rep.MeanWearUsed))
	}
	return t, nil
}

func init() {
	registerTable("fleetsim", 310, []string{"extension", "sim"},
		func(ctx context.Context, o Options) (*Table, error) { return FleetSimCtx(ctx, o) })
}
