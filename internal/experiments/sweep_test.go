package experiments

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"immersionoc/internal/queueing"
)

// naiveQPSAt is the O(phases) linear scan the phase cursor replaced;
// kept here as the reference implementation the cursor must match
// bit-for-bit (its cumulative bounds accumulate in the same order).
func naiveQPSAt(phases []queueing.LoadPhase, duration, t float64) (qps, phaseEnd float64) {
	off := 0.0
	for _, ph := range phases {
		if t < off+ph.DurationS {
			return ph.QPS, off + ph.DurationS
		}
		off += ph.DurationS
	}
	return 0, duration
}

// TestPhaseCursorMatchesNaiveScan drives the incremental cursor over a
// multi-hundred-phase schedule with the monotone queries an arrival
// process makes — plus deliberate backward jumps — and requires exact
// float equality with the naive scan at every point.
func TestPhaseCursorMatchesNaiveScan(t *testing.T) {
	load := BurstyLoad{AvgQPS: 200, BurstFactor: 1.8, OnMeanS: 0.5, OffMeanS: 0.5}
	const duration = 300.0
	phases := load.Schedule(12345, duration)
	if len(phases) < 400 {
		t.Fatalf("want a multi-hundred-phase schedule, got %d phases", len(phases))
	}
	sched := newPhaseSchedule(phases, duration)

	cur := phaseCursor{s: sched}
	r := rand.New(rand.NewSource(99))
	tt := 0.0
	for i := 0; i < 20000; i++ {
		if i%500 == 499 {
			// Backward jump: a fresh driver starting earlier in the
			// schedule must binary-search back, not scan past the end.
			tt = r.Float64() * duration
		} else {
			tt += r.Float64() * 0.05
		}
		if tt > duration+5 {
			tt = r.Float64() * duration
		}
		gotQPS, gotEnd := cur.at(tt)
		wantQPS, wantEnd := naiveQPSAt(phases, duration, tt)
		if gotQPS != wantQPS || gotEnd != wantEnd {
			t.Fatalf("t=%v: cursor (%v, %v) != naive scan (%v, %v)", tt, gotQPS, gotEnd, wantQPS, wantEnd)
		}
	}

	// Past-the-end queries report rate 0 with the schedule duration.
	if qps, end := cur.at(duration + 1); qps != 0 || end != duration {
		t.Fatalf("past-end query = (%v, %v), want (0, %v)", qps, end, duration)
	}
}

// shortFig12 is a cheap Fig12 grid for worker-equivalence tests.
func shortFig12() Fig12Params {
	p := DefaultFig12Params()
	p.DurationS = 60
	p.PCoreSteps = []int{10, 14}
	return p
}

// TestFig12WorkersEquivalence: the Fig12 sweep returns identical
// points at any worker count.
func TestFig12WorkersEquivalence(t *testing.T) {
	p := shortFig12()
	serial, err := Fig12DataCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		pp := p
		pp.Workers = w
		par, err := Fig12DataCtx(context.Background(), pp)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: grid diverges from serial:\n  serial:   %+v\n  parallel: %+v", w, serial, par)
		}
	}
}

// TestFig13WorkersEquivalence: the nine scenario runs return identical
// cells at any worker count.
func TestFig13WorkersEquivalence(t *testing.T) {
	p := DefaultFig13Params()
	p.DurationS = 60
	serial, err := Fig13DataCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 8
	par, err := Fig13DataCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("fig13 cells diverge between serial and 8-wide runs")
	}
}

// TestFig9WorkersEquivalence covers the model-driven sweeps too: same
// rows at any worker count.
func TestFig9WorkersEquivalence(t *testing.T) {
	serial, err := Fig9DataCtx(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig9DataCtx(context.Background(), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("fig9 rows diverge between serial and 8-wide runs")
	}

	cSerial, err := CoolingComparisonDataCtx(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cPar, err := CoolingComparisonDataCtx(context.Background(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cSerial, cPar) {
		t.Fatal("cooling rows diverge between serial and 4-wide runs")
	}
}

// TestSchedulesHoistedOnce: the grid's shared burst schedule is
// expanded once and value-identical to the per-cell expansion the
// serial code performed.
func TestSchedulesHoistedOnce(t *testing.T) {
	p := shortFig12()
	s := expandSchedules(p)
	want := p.Load.Schedule(p.Seed*977, p.DurationS)
	if !reflect.DeepEqual(s.shared.phases, want) {
		t.Fatal("hoisted schedule differs from the legacy per-cell expansion")
	}
	if s.perVM != nil {
		t.Fatal("correlated grid should not carry per-VM schedules")
	}

	p.IndependentBursts = true
	s = expandSchedules(p)
	if len(s.perVM) != p.VMs {
		t.Fatalf("per-VM schedules = %d, want %d", len(s.perVM), p.VMs)
	}
	for i := range s.perVM {
		want := p.Load.Schedule(p.Seed*977+uint64(i)*7919, p.DurationS)
		if !reflect.DeepEqual(s.perVM[i].phases, want) {
			t.Fatalf("VM %d schedule differs from the legacy seed formula", i)
		}
		if s.vmSchedule(i) != s.perVM[i] {
			t.Fatalf("vmSchedule(%d) not the private schedule", i)
		}
	}
}
