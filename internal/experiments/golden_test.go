package experiments

import (
	"math"
	"testing"
)

// Golden regression grids: the calibrated model outputs for every cell
// of Figures 9, 10 and 11, captured from the tuned models. These pin
// the calibration — any model change that silently shifts a reproduced
// figure fails here first. Tolerance is half a percentage point.

const goldenTol = 0.005

type goldenCell struct {
	row, config string
	value       float64
}

var fig9Golden = []goldenCell{
	{"SQL", "B2", 0.0000},
	{"SQL", "OC1", 0.1232},
	{"SQL", "OC2", 0.1461},
	{"SQL", "OC3", 0.2458},
	{"Training", "B2", 0.0000},
	{"Training", "OC1", 0.1366},
	{"Training", "OC2", 0.1409},
	{"Training", "OC3", 0.1449},
	{"Key-Value", "B2", 0.0000},
	{"Key-Value", "OC1", 0.1218},
	{"Key-Value", "OC2", 0.1537},
	{"Key-Value", "OC3", 0.1969},
	{"BI", "B2", 0.0000},
	{"BI", "OC1", 0.1280},
	{"BI", "OC2", 0.1309},
	{"BI", "OC3", 0.1369},
	{"Pmbench", "B2", 0.0000},
	{"Pmbench", "OC1", 0.0598},
	{"Pmbench", "OC2", 0.1055},
	{"Pmbench", "OC3", 0.1415},
	{"TeraSort", "B2", 0.0000},
	{"TeraSort", "OC1", 0.0341},
	{"TeraSort", "OC2", 0.0556},
	{"TeraSort", "OC3", 0.1156},
	{"DiskSpeed", "B2", 0.0000},
	{"DiskSpeed", "OC1", 0.0354},
	{"DiskSpeed", "OC2", 0.1092},
	{"DiskSpeed", "OC3", 0.1343},
	{"SPECJBB", "B2", 0.0000},
	{"SPECJBB", "OC1", 0.1141},
	{"SPECJBB", "OC2", 0.1414},
	{"SPECJBB", "OC3", 0.1680},
}

var fig10Golden = []goldenCell{
	{"copy", "B1", 0.0000},
	{"copy", "B2", 0.0282},
	{"copy", "B3", 0.0839},
	{"copy", "B4", 0.1700},
	{"copy", "OC1", 0.0819},
	{"copy", "OC2", 0.1438},
	{"copy", "OC3", 0.2401},
	{"scale", "B1", 0.0000},
	{"scale", "B2", 0.0282},
	{"scale", "B3", 0.0839},
	{"scale", "B4", 0.1700},
	{"scale", "OC1", 0.0819},
	{"scale", "OC2", 0.1438},
	{"scale", "OC3", 0.2401},
	{"add", "B1", 0.0000},
	{"add", "B2", 0.0282},
	{"add", "B3", 0.0839},
	{"add", "B4", 0.1700},
	{"add", "OC1", 0.0819},
	{"add", "OC2", 0.1438},
	{"add", "OC3", 0.2401},
	{"triad", "B1", 0.0000},
	{"triad", "B2", 0.0282},
	{"triad", "B3", 0.0839},
	{"triad", "B4", 0.1700},
	{"triad", "OC1", 0.0819},
	{"triad", "OC2", 0.1438},
	{"triad", "OC3", 0.2401},
}

var fig11Golden = []goldenCell{
	{"VGG11", "Base", 0.0000},
	{"VGG11", "OCG1", 0.0719},
	{"VGG11", "OCG2", 0.1370},
	{"VGG11", "OCG3", 0.1418},
	{"VGG11B", "Base", 0.0000},
	{"VGG11B", "OCG1", 0.0879},
	{"VGG11B", "OCG2", 0.1332},
	{"VGG11B", "OCG3", 0.1348},
	{"VGG13", "Base", 0.0000},
	{"VGG13", "OCG1", 0.0759},
	{"VGG13", "OCG2", 0.1360},
	{"VGG13", "OCG3", 0.1401},
	{"VGG13B", "Base", 0.0000},
	{"VGG13B", "OCG1", 0.0899},
	{"VGG13B", "OCG2", 0.1327},
	{"VGG13B", "OCG3", 0.1339},
	{"VGG16", "Base", 0.0000},
	{"VGG16", "OCG1", 0.0799},
	{"VGG16", "OCG2", 0.1351},
	{"VGG16", "OCG3", 0.1383},
	{"VGG16B", "Base", 0.0000},
	{"VGG16B", "OCG1", 0.0929},
	{"VGG16B", "OCG2", 0.1320},
	{"VGG16B", "OCG3", 0.1326},
}

func TestFig9Golden(t *testing.T) {
	got := map[[2]string]float64{}
	for _, c := range Fig9Data() {
		got[[2]string{c.App, c.Config}] = c.Improvement
	}
	for _, g := range fig9Golden {
		v, ok := got[[2]string{g.row, g.config}]
		if !ok {
			t.Errorf("missing cell %s/%s", g.row, g.config)
			continue
		}
		if math.Abs(v-g.value) > goldenTol {
			t.Errorf("Fig9 %s/%s drifted: %v, golden %v", g.row, g.config, v, g.value)
		}
	}
	if len(fig9Golden) != len(got) {
		t.Errorf("cell count changed: %d golden vs %d produced", len(fig9Golden), len(got))
	}
}

func TestFig10Golden(t *testing.T) {
	got := map[[2]string]float64{}
	for _, c := range Fig10Data() {
		got[[2]string{c.Kernel, c.Config}] = c.VsB1
	}
	for _, g := range fig10Golden {
		v, ok := got[[2]string{g.row, g.config}]
		if !ok {
			t.Errorf("missing cell %s/%s", g.row, g.config)
			continue
		}
		if math.Abs(v-g.value) > goldenTol {
			t.Errorf("Fig10 %s/%s drifted: %v, golden %v", g.row, g.config, v, g.value)
		}
	}
}

func TestFig11Golden(t *testing.T) {
	got := map[[2]string]float64{}
	for _, c := range Fig11Data() {
		got[[2]string{c.Model, c.Config}] = c.Improvement
	}
	for _, g := range fig11Golden {
		v, ok := got[[2]string{g.row, g.config}]
		if !ok {
			t.Errorf("missing cell %s/%s", g.row, g.config)
			continue
		}
		if math.Abs(v-g.value) > goldenTol {
			t.Errorf("Fig11 %s/%s drifted: %v, golden %v", g.row, g.config, v, g.value)
		}
	}
}
