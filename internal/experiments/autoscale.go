package experiments

import (
	"context"
	"fmt"

	"immersionoc/internal/autoscaler"
)

// Fig15Result carries the model-validation run (scale-up/down only).
type Fig15Result struct {
	WithModel *autoscaler.Result
	Baseline  *autoscaler.Result
}

// Fig15Data runs the Equation 1 validation: three fixed VMs, the load
// stepping 1000→2000→500→3000→1000 QPS, frequency control on, versus
// a baseline that never changes frequency. The zero Options reproduces
// the published run (seed 3).
func Fig15Data(o Options) (Fig15Result, error) {
	return Fig15DataCtx(context.Background(), o)
}

// Fig15DataCtx is Fig15Data honoring ctx: a cancelled context stops
// the in-flight simulation at the kernel's next event batch.
func Fig15DataCtx(ctx context.Context, o Options) (Fig15Result, error) {
	phases := autoscaler.ValidationPhases()

	mk := func(policy autoscaler.Policy) autoscaler.Config {
		cfg := autoscaler.DefaultConfig(policy, phases)
		cfg.Seed = o.SeedOr(3)
		cfg.InitialVMs = 3
		cfg.MinVMs = 3
		cfg.DisableScaleOut = true
		cfg.Tel = o.Tel
		return cfg
	}
	withModel, err := autoscaler.RunCtx(ctx, mk(autoscaler.OCA))
	if err != nil {
		return Fig15Result{}, err
	}
	baseline, err := autoscaler.RunCtx(ctx, mk(autoscaler.Baseline))
	if err != nil {
		return Fig15Result{}, err
	}
	return Fig15Result{WithModel: withModel, Baseline: baseline}, nil
}

// Fig15 renders the validation time series at phase boundaries.
func Fig15(o Options) (*Table, error) {
	res, err := Fig15Data(o)
	if err != nil {
		return nil, err
	}
	return fig15Table(res), nil
}

// fig15Table renders the validation run.
func fig15Table(res Fig15Result) *Table {
	t := &Table{
		Title:  "Figure 15 — Model validation: utilization and frequency under load steps (3 VMs)",
		Header: []string{"t (s)", "QPS", "Util (model)", "Freq (% of range)", "Util (baseline)"},
		Notes: []string{
			"paper: each frequency increase lowers utilization; at 3000 QPS even max frequency",
			"leaves utilization above the 50% scale-out threshold",
		},
	}
	qs := []float64{1000, 2000, 500, 3000, 1000}
	for i, q := range qs {
		// Sample mid-phase (steady state for that load level).
		mid := float64(i)*300 + 210
		t.AddRow(
			fmt.Sprintf("%.0f", mid),
			fmt.Sprintf("%.0f", q),
			F(res.WithModel.Util.At(mid), 3),
			fmt.Sprintf("%.0f%%", res.WithModel.FreqFrac.At(mid)*100),
			F(res.Baseline.Util.At(mid), 3),
		)
	}
	return t
}

// TableXIResult is the full auto-scaler comparison.
type TableXIResult struct {
	Baseline, OCE, OCA *autoscaler.Result
}

// TableXIData runs the three auto-scaler policies over the 500→4000
// QPS ramp. The zero Options reproduces the published run (seed 3).
func TableXIData(o Options) (TableXIResult, error) {
	return TableXIDataCtx(context.Background(), o)
}

// TableXIDataCtx is TableXIData honoring ctx: a cancelled context
// stops the in-flight policy simulation at the kernel's next event
// batch instead of finishing the ramp.
func TableXIDataCtx(ctx context.Context, o Options) (TableXIResult, error) {
	phases := autoscaler.RampPhases(500, 4000, 500, 300)
	var res TableXIResult
	for _, pc := range []struct {
		policy autoscaler.Policy
		dst    **autoscaler.Result
	}{
		{autoscaler.Baseline, &res.Baseline},
		{autoscaler.OCE, &res.OCE},
		{autoscaler.OCA, &res.OCA},
	} {
		cfg := autoscaler.DefaultConfig(pc.policy, phases)
		cfg.Seed = o.SeedOr(3)
		cfg.Tel = o.Tel
		r, err := autoscaler.RunCtx(ctx, cfg)
		if err != nil {
			return TableXIResult{}, err
		}
		*pc.dst = r
	}
	return res, nil
}

// TableXI renders the full auto-scaler experiment results.
func TableXI(o Options) (*Table, TableXIResult, error) {
	res, err := TableXIData(o)
	if err != nil {
		return nil, TableXIResult{}, err
	}
	return tableXITable(res), res, nil
}

// tableXITable renders the policy comparison.
func tableXITable(res TableXIResult) *Table {
	t := &Table{
		Title:  "Table XI — Full auto-scaler experiment (ramp 500→4000 QPS)",
		Header: []string{"Config", "Norm P95 Lat", "Norm Avg Lat", "Max VMs", "VM×hours", "VM power vs base"},
		Notes: []string{
			"paper: OC-E 0.58/0.27, 6 VMs, 2.17 VMh, +7% power; OC-A 0.46/0.23, 5 VMs, 1.95 VMh, +27% power",
			"latency ratios here are whole-run request-weighted; the paper's larger ratios concentrate",
			"on the scale-out transition windows (see EXPERIMENTS.md)",
		},
	}
	base := res.Baseline
	row := func(r *autoscaler.Result) {
		t.AddRow(r.Policy.String(),
			F(r.P95LatencyS/base.P95LatencyS, 2),
			F(r.AvgLatencyS/base.AvgLatencyS, 2),
			fmt.Sprintf("%d", r.MaxVMs),
			F(r.VMHours, 2),
			Pct(r.AvgVMPowerW/base.AvgVMPowerW-1),
		)
	}
	row(res.Baseline)
	row(res.OCE)
	row(res.OCA)
	return t
}

// Fig16 renders the utilization traces of the three policies at fixed
// sampling points (one per minute).
func Fig16(o Options) (*Table, error) {
	res, err := TableXIData(o)
	if err != nil {
		return nil, err
	}
	return fig16Table(res), nil
}

// fig16Table renders the per-minute utilization traces.
func fig16Table(res TableXIResult) *Table {
	t := &Table{
		Title:  "Figure 16 — Utilization over time: Baseline vs OC-E vs OC-A",
		Header: []string{"t (s)", "QPS", "Baseline util", "OC-E util", "OC-A util", "Base VMs", "OC-E VMs", "OC-A VMs"},
	}
	phases := autoscaler.RampPhases(500, 4000, 500, 300)
	total := 0.0
	for _, p := range phases {
		total += p.DurationS
	}
	qpsAt := func(ts float64) float64 {
		off := 0.0
		for _, p := range phases {
			if ts < off+p.DurationS {
				return p.QPS
			}
			off += p.DurationS
		}
		return 0
	}
	for ts := 60.0; ts < total; ts += 60 {
		t.AddRow(
			fmt.Sprintf("%.0f", ts),
			fmt.Sprintf("%.0f", qpsAt(ts)),
			F(res.Baseline.Util.At(ts), 2),
			F(res.OCE.Util.At(ts), 2),
			F(res.OCA.Util.At(ts), 2),
			fmt.Sprintf("%.0f", res.Baseline.VMs.At(ts)),
			fmt.Sprintf("%.0f", res.OCE.VMs.At(ts)),
			fmt.Sprintf("%.0f", res.OCA.VMs.At(ts)),
		)
	}
	return t
}

func init() {
	registerTable("fig15", 150, []string{"paper", "sim"},
		func(ctx context.Context, o Options) (*Table, error) {
			res, err := Fig15DataCtx(ctx, o)
			if err != nil {
				return nil, err
			}
			return fig15Table(res), nil
		})
	registerTable("fig16", 160, []string{"paper", "sim"},
		func(ctx context.Context, o Options) (*Table, error) {
			res, err := TableXIDataCtx(ctx, o)
			if err != nil {
				return nil, err
			}
			return fig16Table(res), nil
		})
	registerTable("table11", 170, []string{"paper", "sim"},
		func(ctx context.Context, o Options) (*Table, error) {
			res, err := TableXIDataCtx(ctx, o)
			if err != nil {
				return nil, err
			}
			return tableXITable(res), nil
		})
}
