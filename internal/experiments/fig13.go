package experiments

import (
	"context"
	"fmt"

	"immersionoc/internal/freq"
	"immersionoc/internal/queueing"
	"immersionoc/internal/rng"
	"immersionoc/internal/sim"
	"immersionoc/internal/sweep"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/workload"
)

// Scenario is one Table X workload mix: counts of each application's
// VMs, 20 vcores total assigned to 16 pcores (20% oversubscription).
type Scenario struct {
	Name     string
	SQL      int
	BI       int
	SPECJBB  int
	TeraSort int
}

// TableX returns the three oversubscription scenarios.
func TableX() []Scenario {
	return []Scenario{
		{Name: "Scenario 1", SQL: 1, BI: 1, SPECJBB: 1, TeraSort: 2},
		{Name: "Scenario 2", SQL: 1, BI: 1, SPECJBB: 2, TeraSort: 1},
		{Name: "Scenario 3", SQL: 2, BI: 1, SPECJBB: 1, TeraSort: 1},
	}
}

// VCores returns the scenario's total vcores (20 in all cases).
func (s Scenario) VCores() int {
	return 4 * (s.SQL + s.BI + s.SPECJBB + s.TeraSort)
}

// Fig13Cell is one bar of Figure 13: an application's improvement (to
// its metric of interest) relative to the B2 baseline with the
// requisite 20 pcores.
type Fig13Cell struct {
	Scenario string
	App      string
	Instance int
	Config   string // "B2-oversub" or "OC3-oversub"
	// Improvement is positive when better than the 20-pcore B2
	// baseline.
	Improvement float64
}

// Fig13Params holds the experiment knobs.
type Fig13Params struct {
	Seed      uint64
	DurationS float64
	WarmupS   float64
	PCores    int // 16 (oversubscribed); baseline uses VCores()
	// SQLLoad is the bursty SQL arrival process.
	SQLLoad                       BurstyLoad
	SQLServiceMeanS, SQLServiceCV float64
	// JBBThreads/JBBServiceMeanS/JBBThinkS parameterize the
	// closed-loop SPECJBB injectors per VM.
	JBBThreads      int
	JBBServiceMeanS float64
	JBBThinkS       float64
	// BatchTaskS is the per-task demand of the closed-loop batch
	// (BI, TeraSort) runners.
	BatchTaskS float64
	// Tel is the telemetry scope the scenario engines publish into
	// (nil disables collection). Each scenario run lands in a child
	// scope named <scenario>/<config>.
	Tel *telemetry.Scope
	// Workers bounds the sweep's parallel scenario runs (≤ 1 = serial).
	Workers int
}

// DefaultFig13Params mirrors the Table X setup.
func DefaultFig13Params() Fig13Params {
	return Fig13Params{
		Seed:      11,
		DurationS: 240,
		WarmupS:   30,
		PCores:    16,
		SQLLoad: BurstyLoad{
			AvgQPS:      175,
			BurstFactor: 1.6,
			OnMeanS:     3,
			OffMeanS:    3,
		},
		SQLServiceMeanS: 0.008,
		SQLServiceCV:    1.2,
		JBBThreads:      6,
		JBBServiceMeanS: 0.005,
		JBBThinkS:       0.005,
		BatchTaskS:      0.25,
	}
}

// vmMetrics captures a VM's raw metric from one run.
type vmMetrics struct {
	app string
	// p95 for latency apps (seconds).
	p95 float64
	// rate for throughput apps and batch (per second).
	rate float64
}

// runScenario simulates one scenario on pcores under cfg and returns
// per-VM raw metrics in deterministic order. A cancelled ctx stops
// the simulation at the kernel's next event batch.
func runScenario(ctx context.Context, p Fig13Params, sc Scenario, cfg freq.Config, pcores int, burst *phaseSchedule) ([]vmMetrics, error) {
	eng := queueing.NewEngine(workload.SQL.ScalableFraction())
	eng.SetTelemetry(p.Tel)
	host := eng.NewHost(pcores)

	type tracked struct {
		app       string
		vm        *queueing.VM
		completed *int
		isBatch   bool
		isJBB     bool
	}
	var vmsT []tracked

	seed := p.Seed
	nextSeed := func() uint64 { seed += 1009; return seed }

	speedFor := func(app workload.Profile) float64 { return 1 / app.ServiceTimeRatio(cfg) }

	// SQL: open-loop bursty arrivals, P95 metric. The burst schedule
	// is shared across SQL instances (correlated load) — and across
	// every scenario run, so the caller expands it once.
	for i := 0; i < sc.SQL; i++ {
		app := workload.SQL
		v := host.NewVM(fmt.Sprintf("sql%d", i), app.Cores, speedFor(app))
		drivePhases(eng, v, nextSeed(), queueing.LogNormalService(p.SQLServiceMeanS, p.SQLServiceCV), burst)
		vmsT = append(vmsT, tracked{app: app.Name, vm: v})
	}
	// BI and TeraSort: closed-loop batch runners, one task per vcore.
	batch := func(name string, app workload.Profile, count int) {
		for i := 0; i < count; i++ {
			v := host.NewVM(fmt.Sprintf("%s%d", name, i), app.Cores, speedFor(app))
			done := new(int)
			vmsT = append(vmsT, tracked{app: app.Name, vm: v, completed: done, isBatch: true})
		}
	}
	batch("bi", workload.BI, sc.BI)
	batch("ts", workload.TeraSort, sc.TeraSort)

	// SPECJBB: closed-loop injectors with think time.
	for i := 0; i < sc.SPECJBB; i++ {
		app := workload.SPECJBB
		v := host.NewVM(fmt.Sprintf("jbb%d", i), app.Cores, speedFor(app))
		done := new(int)
		vmsT = append(vmsT, tracked{app: app.Name, vm: v, completed: done, isJBB: true})
	}

	// Wire completion hooks: batch resubmits immediately; JBB after
	// think time. Counters only accumulate after warmup.
	rand := rng.New(p.Seed * 31)
	byVM := make(map[*queueing.VM]tracked, len(vmsT))
	for _, tr := range vmsT {
		byVM[tr.vm] = tr
	}
	warm := false
	eng.OnComplete = func(req *queueing.Request, v *queueing.VM) {
		tr, ok := byVM[v]
		if !ok {
			return
		}
		switch {
		case tr.isBatch:
			if warm {
				*tr.completed++
			}
			v.Submit(p.BatchTaskS)
		case tr.isJBB:
			if warm {
				*tr.completed++
			}
			think := rand.Exp(1 / p.JBBThinkS)
			vv := v
			eng.Sim.After(think, func(s *sim.Simulation) {
				vv.Submit(rand.LogNormal(p.JBBServiceMeanS, 1.0))
			})
		}
	}

	// Prime closed loops.
	for _, tr := range vmsT {
		if tr.isBatch {
			for c := 0; c < tr.vm.VCores; c++ {
				tr.vm.Submit(p.BatchTaskS)
			}
		}
		if tr.isJBB {
			for c := 0; c < p.JBBThreads; c++ {
				tr.vm.Submit(rand.LogNormal(p.JBBServiceMeanS, 1.0))
			}
		}
	}

	eng.Sim.Schedule(sim.Time(p.WarmupS), func(s *sim.Simulation) {
		warm = true
		for _, tr := range vmsT {
			tr.vm.Latency.Reset()
		}
	})

	if err := eng.Sim.RunUntilCtx(ctx, sim.Time(p.DurationS)); err != nil {
		return nil, err
	}

	span := p.DurationS - p.WarmupS
	var out []vmMetrics
	for _, tr := range vmsT {
		m := vmMetrics{app: tr.app}
		if tr.completed != nil {
			m.rate = float64(*tr.completed) / span
		} else {
			m.p95 = tr.vm.Latency.P95()
		}
		out = append(out, m)
	}
	return out, nil
}

// withOptions applies the shared experiment options on top of the
// calibrated parameters.
func (p Fig13Params) withOptions(o Options) Fig13Params {
	p.Seed = o.SeedOr(p.Seed)
	p.DurationS = o.DurationOr(p.DurationS)
	p.Tel = o.Tel
	p.Workers = o.Workers
	return p
}

// Fig13Data runs all three scenarios under the oversubscribed B2 and
// OC3 configurations, normalizing against the 20-pcore B2 baseline.
func Fig13Data(p Fig13Params) []Fig13Cell {
	cells, _ := Fig13DataCtx(context.Background(), p)
	return cells
}

// Fig13DataCtx runs the scenarios. All nine simulations — three
// scenarios, each at the 20-pcore B2 baseline plus the two
// oversubscribed configs — are independent, so they fan out through
// sweep.Map under p.Workers; the improvement normalization happens
// afterwards on the index-ordered metrics, preserving the serial
// output exactly. Cancellation is honored both between runs and
// inside each run's simulation (the kernel checks ctx every event
// batch), so a cancelled experiment returns promptly.
func Fig13DataCtx(ctx context.Context, p Fig13Params) ([]Fig13Cell, error) {
	type run struct {
		sc     Scenario
		label  string
		cfg    freq.Config
		pcores int
	}
	var runs []run
	for _, sc := range TableX() {
		runs = append(runs,
			run{sc, "baseline", freq.B2, sc.VCores()},
			run{sc, "B2-oversub", freq.B2, p.PCores},
			run{sc, "OC3-oversub", freq.OC3, p.PCores})
	}
	burst := newPhaseSchedule(p.SQLLoad.Schedule(p.Seed*977, p.DurationS), p.DurationS)
	metrics, err := sweep.Map(ctx, len(runs), sweep.Options{Workers: p.Workers, Tel: p.Tel},
		func(ctx context.Context, i int) ([]vmMetrics, error) {
			r := runs[i]
			cp := p
			cp.Tel = p.Tel.Child(fmt.Sprintf("%s/%s", r.sc.Name, r.label))
			return runScenario(ctx, cp, r.sc, r.cfg, r.pcores, burst)
		})
	if err != nil {
		return nil, err
	}
	var cells []Fig13Cell
	for s, sc := range TableX() {
		base := metrics[s*3]
		for o := 1; o <= 2; o++ {
			got := metrics[s*3+o]
			label := runs[s*3+o].label
			appCount := map[string]int{}
			for i := range got {
				var imp float64
				if got[i].p95 > 0 || base[i].p95 > 0 {
					if got[i].p95 > 0 && base[i].p95 > 0 {
						imp = 1 - got[i].p95/base[i].p95
					}
				} else if base[i].rate > 0 {
					imp = got[i].rate/base[i].rate - 1
				}
				appCount[got[i].app]++
				cells = append(cells, Fig13Cell{
					Scenario:    sc.Name,
					App:         got[i].app,
					Instance:    appCount[got[i].app],
					Config:      label,
					Improvement: imp,
				})
			}
		}
	}
	return cells, nil
}

// Fig13 renders the batch + latency-sensitive oversubscription
// experiment.
func Fig13() *Table {
	return fig13Table(Fig13Data(DefaultFig13Params()))
}

// fig13Table renders the scenario cells.
func fig13Table(data []Fig13Cell) *Table {
	t := &Table{
		Title:  "Figure 13 — Improvement vs 20-pcore B2 baseline (20 vcores on 16 pcores)",
		Header: []string{"Scenario", "App", "#", "Config", "Improvement"},
		Notes: []string{
			"paper: B2 oversubscription degrades everything (latency apps worst);",
			"OC3 improves all workloads up to 17%, ≥6% except TeraSort in scenario 1",
		},
	}
	for _, c := range data {
		t.AddRow(c.Scenario, c.App, fmt.Sprintf("%d", c.Instance), c.Config, Pct(c.Improvement))
	}
	return t
}

func init() {
	registerTable("fig13", 140, []string{"paper", "sim"},
		func(ctx context.Context, o Options) (*Table, error) {
			data, err := Fig13DataCtx(ctx, DefaultFig13Params().withOptions(o))
			if err != nil {
				return nil, err
			}
			return fig13Table(data), nil
		})
}
