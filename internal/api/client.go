package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// defaultTransport is the shared connection pool every Client without
// an explicit HTTPClient uses. http.DefaultTransport keeps only two
// idle connections per host, so a load generator with dozens of
// workers hammering one daemon would churn through ephemeral ports;
// this transport keeps enough keep-alive connections per host for a
// saturating closed-loop workload to reuse them all.
var defaultTransport = &http.Transport{
	Proxy:               http.ProxyFromEnvironment,
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 128,
	IdleConnTimeout:     90 * time.Second,
}

// defaultClient wraps the shared transport with the API's default
// request timeout. Shared across Clients: the connection pool is the
// point.
var defaultClient = &http.Client{Timeout: 30 * time.Second, Transport: defaultTransport}

// encBuf is the pooled per-call encode scratch: the request is encoded
// into a reused buffer and served to the transport through a reused
// reader, so steady-state calls allocate no body machinery.
type encBuf struct {
	buf bytes.Buffer
	rd  bytes.Reader
}

var encBufs = sync.Pool{New: func() any { return new(encBuf) }}

// Client is the typed Go client of the ocd control-plane API. Server
// and client share this package's request/response structs, so a field
// added on one side is on the wire for both or fails to compile.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (nil = the shared keep-alive
	// client with a 30 s timeout).
	HTTPClient *http.Client
}

// NewClient returns a client for the daemon at baseURL, using the
// shared keep-alive transport.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		HTTPClient: defaultClient,
	}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultClient
}

// call POSTs req as JSON to path (or GETs when req is nil) and decodes
// the response into out. Non-2xx answers decode the ErrorResponse body
// into the returned error.
func (c *Client) call(ctx context.Context, method, path string, req, out any) error {
	var body io.Reader
	if req != nil {
		eb := encBufs.Get().(*encBuf)
		// The transport finishes reading the body inside Do, so the
		// scratch is free for reuse once the call returns.
		defer encBufs.Put(eb)
		eb.buf.Reset()
		if err := json.NewEncoder(&eb.buf).Encode(req); err != nil {
			return fmt.Errorf("api: encode %s: %w", path, err)
		}
		eb.rd.Reset(eb.buf.Bytes())
		body = &eb.rd
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("api: %s: %w", path, err)
	}
	if req != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return fmt.Errorf("api: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("api: %s: %s (HTTP %d)", path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("api: %s: HTTP %d", path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decode %s: %w", path, err)
	}
	return nil
}

// Filter asks which servers can host the VM.
func (c *Client) Filter(ctx context.Context, req FilterRequest) (FilterResponse, error) {
	req.Vers = Version
	var out FilterResponse
	err := c.call(ctx, http.MethodPost, "/v1/filter", req, &out)
	return out, err
}

// Prioritize scores candidate servers for the VM.
func (c *Client) Prioritize(ctx context.Context, req PrioritizeRequest) (PrioritizeResponse, error) {
	req.Vers = Version
	var out PrioritizeResponse
	err := c.call(ctx, http.MethodPost, "/v1/prioritize", req, &out)
	return out, err
}

// Place binds a VM through the cluster packer.
func (c *Client) Place(ctx context.Context, req PlaceRequest) (PlaceResponse, error) {
	req.Vers = Version
	var out PlaceResponse
	err := c.call(ctx, http.MethodPost, "/v1/place", req, &out)
	return out, err
}

// Remove releases a VM by ID.
func (c *Client) Remove(ctx context.Context, req RemoveRequest) (RemoveResponse, error) {
	req.Vers = Version
	var out RemoveResponse
	err := c.call(ctx, http.MethodPost, "/v1/remove", req, &out)
	return out, err
}

// Overclock requests or cancels an overclock grant.
func (c *Client) Overclock(ctx context.Context, req OverclockGrantRequest) (OverclockDecision, error) {
	req.Vers = Version
	var out OverclockDecision
	err := c.call(ctx, http.MethodPost, "/v1/overclock", req, &out)
	return out, err
}

// Step advances the simulation in stepped time mode.
func (c *Client) Step(ctx context.Context, req StepRequest) (StepResponse, error) {
	req.Vers = Version
	var out StepResponse
	err := c.call(ctx, http.MethodPost, "/v1/step", req, &out)
	return out, err
}

// Status snapshots the fleet KPIs.
func (c *Client) Status(ctx context.Context) (FleetStatus, error) {
	var out FleetStatus
	err := c.call(ctx, http.MethodGet, "/v1/status", nil, &out)
	return out, err
}

// Healthz probes liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.call(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("api: /metrics: HTTP %d", resp.StatusCode)
	}
	return string(data), nil
}
