// Package api is the typed, versioned wire contract of the ocd
// control-plane daemon: the request/response structs the HTTP server
// decodes and encodes, shared verbatim by the Go client (client.go) so
// server and callers cannot drift.
//
// The API follows the shape of a Kubernetes scheduler extender —
// filter ("which servers can take this VM?"), prioritize ("score the
// candidates"), plus the overclock grant/cancel verb the paper's
// economics revolve around — with fleet status and deterministic time
// control (step) for tests and batch-equivalence checks.
//
// Wire conventions, shared with the experiment registry's JSON form:
// snake_case field names, omitempty on optional fields, and a version
// field on every top-level request/response (Version, currently "v1").
// All floats are plain JSON numbers; Go's encoder emits the shortest
// round-trippable form, so a trace driven through the HTTP path
// reproduces the batch simulation bit for bit.
package api

// Version is the wire-format version tag carried by every top-level
// request and response.
const Version = "v1"

// VMSpec describes a VM to place: the sizing fields the cluster packer
// bins by plus the utilization statistics the overclock governor's
// Equation 1 model consumes.
type VMSpec struct {
	// ID is the caller-assigned VM identity; departures reference it.
	ID int `json:"id"`
	// VCores and MemoryGB are the sold size.
	VCores   int     `json:"vcores"`
	MemoryGB float64 `json:"memory_gb"`
	// Class is "regular", "high-perf" or "harvest" (empty = regular).
	Class string `json:"class,omitempty"`
	// AvgUtil is the VM's mean CPU utilization in [0, 1].
	AvgUtil float64 `json:"avg_util"`
	// ScalableFraction is the workload's ΔPperf/ΔAperf.
	ScalableFraction float64 `json:"scalable_fraction,omitempty"`
}

// FilterRequest asks which servers can take a VM given thermal,
// row-power and wear-risk headroom.
type FilterRequest struct {
	Vers string `json:"version,omitempty"`
	VM   VMSpec `json:"vm"`
}

// ServerRef identifies one fleet server in responses.
type ServerRef struct {
	// Index is the dense fleet index used by grant and prioritize
	// calls; ID is the cluster server ID.
	Index int `json:"index"`
	ID    int `json:"id"`
	Tank  int `json:"tank"`
}

// FilterFailure names why a server was filtered out.
type FilterFailure struct {
	Server ServerRef `json:"server"`
	// Reason is a machine-readable cause: "capacity", "memory",
	// "class", "thermal", "risk_budget" or "failed".
	Reason string `json:"reason"`
}

// FilterResponse lists the servers that can host the VM and, for the
// rest, why not.
type FilterResponse struct {
	Vers string `json:"version,omitempty"`
	// Eligible are the servers that pass every headroom check,
	// ascending by index.
	Eligible []ServerRef `json:"eligible,omitempty"`
	// Failed carries the per-server rejection reasons.
	Failed []FilterFailure `json:"failed,omitempty"`
}

// PrioritizeRequest scores filter-eligible candidates for a VM.
type PrioritizeRequest struct {
	Vers string `json:"version,omitempty"`
	VM   VMSpec `json:"vm"`
	// Servers are the candidate fleet indices (typically a
	// FilterResponse's eligible set).
	Servers []int `json:"servers"`
}

// HostScore is one candidate's priority.
type HostScore struct {
	Server ServerRef `json:"server"`
	// Score is 0–100, higher is better: headroom after placement
	// combined with wear credit (perf-per-TCO proxy — a server with
	// spare thermal/wear budget can absorb bursts by overclocking
	// instead of degrading).
	Score float64 `json:"score"`
}

// PrioritizeResponse carries the scores, best first.
type PrioritizeResponse struct {
	Vers   string      `json:"version,omitempty"`
	Scores []HostScore `json:"scores,omitempty"`
}

// PlaceRequest binds a VM to a server (best-fit when Server is nil).
type PlaceRequest struct {
	Vers string `json:"version,omitempty"`
	VM   VMSpec `json:"vm"`
}

// PlaceResponse reports the binding.
type PlaceResponse struct {
	Vers string `json:"version,omitempty"`
	// Placed is false when no server fits (the arrival is rejected and
	// counted, exactly like a batch trace replay).
	Placed bool `json:"placed"`
	// Server is the binding when placed.
	Server *ServerRef `json:"server,omitempty"`
	// Error carries the placer's reason when not placed.
	Error string `json:"error,omitempty"`
}

// RemoveRequest releases a VM by ID. Removing an ID that was rejected
// at arrival (or never placed) is a no-op, matching trace replay.
type RemoveRequest struct {
	Vers string `json:"version,omitempty"`
	ID   int    `json:"id"`
}

// RemoveResponse acknowledges the departure.
type RemoveResponse struct {
	Vers string `json:"version,omitempty"`
	// Removed is false when the ID was not placed.
	Removed bool `json:"removed"`
}

// OverclockGrantRequest asks to grant or cancel a server's overclock.
type OverclockGrantRequest struct {
	Vers string `json:"version,omitempty"`
	// Server is the fleet index.
	Server int `json:"server"`
	// Cancel revokes an existing grant instead of requesting one.
	Cancel bool `json:"cancel,omitempty"`
}

// OverclockDecision is the governor's typed answer.
type OverclockDecision struct {
	Vers string `json:"version,omitempty"`
	// Granted reports whether the server is overclocked after the call.
	Granted bool `json:"granted"`
	// Reason is the machine-readable cause: "granted", "cancelled",
	// "eq1_threshold", "tank_budget", "risk_budget", "feeder_cap" or
	// "not_overclockable" (the placement.Reason vocabulary).
	Reason string `json:"reason"`
	// RowPowerW is the row draw after the decision.
	RowPowerW float64 `json:"row_power_w"`
}

// StepRequest advances the simulation deterministically: Steps control
// periods (default 1). Only valid in stepped time mode.
type StepRequest struct {
	Vers  string `json:"version,omitempty"`
	Steps int    `json:"steps,omitempty"`
}

// StepResponse reports the clock after stepping.
type StepResponse struct {
	Vers string `json:"version,omitempty"`
	// SimTimeS is the simulated time after the steps ran.
	SimTimeS float64 `json:"sim_time_s"`
	// StepsRun is the number of control periods executed.
	StepsRun int `json:"steps_run"`
}

// FleetStatus is the daemon's KPI snapshot.
type FleetStatus struct {
	Vers string `json:"version,omitempty"`
	// SimTimeS is the current simulated time; StepS the control
	// period; Mode "stepped" or "scaled".
	SimTimeS float64 `json:"sim_time_s"`
	StepS    float64 `json:"step_s"`
	Mode     string  `json:"mode"`
	// Servers / Tanks describe the fleet shape.
	Servers int `json:"servers"`
	Tanks   int `json:"tanks"`
	// PlacedVMs and Density describe packing state.
	PlacedVMs int     `json:"placed_vms"`
	Density   float64 `json:"density"`
	// Rejected counts denied arrivals since start.
	Rejected int `json:"rejected"`
	// RowPowerW is the current row draw; MaxBathC the hottest bath
	// reached; Overclocked the servers currently overclocked.
	RowPowerW   float64 `json:"row_power_w"`
	MaxBathC    float64 `json:"max_bath_c"`
	Overclocked int     `json:"overclocked"`
	// Grants / Cancelled / CapEvents are cumulative decision counts;
	// OverclockServerHours integrates grants over time.
	Grants               int     `json:"grants"`
	Cancelled            int     `json:"cancelled"`
	CapEvents            int     `json:"cap_events"`
	OverclockServerHours float64 `json:"oc_server_hours"`
	// MeanWearUsed is the fleet-average wear rate vs the pro-rata
	// service-life schedule.
	MeanWearUsed float64 `json:"mean_wear_used"`
}

// ErrorResponse is the body of every non-2xx API answer.
type ErrorResponse struct {
	Vers  string `json:"version,omitempty"`
	Error string `json:"error"`
}
