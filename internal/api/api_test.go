package api

import (
	"encoding/json"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// wireStructs is one fully populated instance of every exported API
// struct — the round-trip and convention tests enumerate it, so a new
// struct must be added here to land.
func wireStructs() []any {
	ref := ServerRef{Index: 3, ID: 3, Tank: 1}
	return []any{
		VMSpec{ID: 9, VCores: 4, MemoryGB: 16, Class: "high-perf", AvgUtil: 0.4, ScalableFraction: 0.6},
		FilterRequest{Vers: Version, VM: VMSpec{ID: 1, VCores: 2, MemoryGB: 8, AvgUtil: 0.3}},
		FilterResponse{Vers: Version, Eligible: []ServerRef{ref}, Failed: []FilterFailure{{Server: ServerRef{Index: 4, ID: 4, Tank: 1}, Reason: "memory"}}},
		FilterFailure{Server: ref, Reason: "thermal"},
		ServerRef{Index: 1, ID: 1, Tank: 0},
		PrioritizeRequest{Vers: Version, VM: VMSpec{ID: 2, VCores: 8, MemoryGB: 32, AvgUtil: 0.5}, Servers: []int{0, 1, 2}},
		PrioritizeResponse{Vers: Version, Scores: []HostScore{{Server: ref, Score: 87.5}}},
		HostScore{Server: ref, Score: 12.25},
		PlaceRequest{Vers: Version, VM: VMSpec{ID: 3, VCores: 2, MemoryGB: 8, AvgUtil: 0.2}},
		PlaceResponse{Vers: Version, Placed: true, Server: &ref},
		RemoveRequest{Vers: Version, ID: 3},
		RemoveResponse{Vers: Version, Removed: true},
		OverclockGrantRequest{Vers: Version, Server: 5, Cancel: true},
		OverclockDecision{Vers: Version, Granted: true, Reason: "granted", RowPowerW: 11234.5},
		StepRequest{Vers: Version, Steps: 12},
		StepResponse{Vers: Version, SimTimeS: 3600, StepsRun: 12},
		FleetStatus{
			Vers: Version, SimTimeS: 300, StepS: 300, Mode: "stepped",
			Servers: 36, Tanks: 3, PlacedVMs: 100, Density: 0.7, Rejected: 2,
			RowPowerW: 12000.5, MaxBathC: 49.9, Overclocked: 4,
			Grants: 40, Cancelled: 3, CapEvents: 1, OverclockServerHours: 3.25,
			MeanWearUsed: 0.2,
		},
		ErrorResponse{Vers: Version, Error: "boom"},
	}
}

// TestRoundTripEveryStruct pins marshal → unmarshal → DeepEqual for
// every exported wire struct: the JSON form loses nothing.
func TestRoundTripEveryStruct(t *testing.T) {
	for _, in := range wireStructs() {
		name := reflect.TypeOf(in).Name()
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		out := reflect.New(reflect.TypeOf(in))
		if err := json.Unmarshal(data, out.Interface()); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if got := out.Elem().Interface(); !reflect.DeepEqual(got, in) {
			t.Errorf("%s: round trip lost data:\n in: %+v\nout: %+v\nwire: %s", name, in, got, data)
		}
	}
}

// TestEveryExportedStructCovered keeps wireStructs honest: reflection
// over the package's exported struct types must find no type missing
// from the round-trip list.
func TestEveryExportedStructCovered(t *testing.T) {
	covered := map[string]bool{}
	for _, in := range wireStructs() {
		covered[reflect.TypeOf(in).Name()] = true
	}
	// The package's struct types, enumerated by hand because reflect
	// cannot list a package's types: keep in sync with api.go (the
	// compiler flags removals, this test flags additions via review of
	// api.go — and the Client, which is not a wire struct, is exempt).
	for _, name := range []string{
		"VMSpec", "FilterRequest", "FilterResponse", "FilterFailure",
		"ServerRef", "PrioritizeRequest", "PrioritizeResponse",
		"HostScore", "PlaceRequest", "PlaceResponse", "RemoveRequest",
		"RemoveResponse", "OverclockGrantRequest", "OverclockDecision",
		"StepRequest", "StepResponse", "FleetStatus", "ErrorResponse",
	} {
		if !covered[name] {
			t.Errorf("wire struct %s missing from the round-trip list", name)
		}
	}
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// TestWireConvention enforces the shared wire format: every JSON tag
// is snake_case, and every top-level request/response carries the
// version field.
func TestWireConvention(t *testing.T) {
	topLevel := map[string]bool{
		"FilterRequest": true, "FilterResponse": true,
		"PrioritizeRequest": true, "PrioritizeResponse": true,
		"PlaceRequest": true, "PlaceResponse": true,
		"RemoveRequest": true, "RemoveResponse": true,
		"OverclockGrantRequest": true, "OverclockDecision": true,
		"StepRequest": true, "StepResponse": true,
		"FleetStatus": true, "ErrorResponse": true,
	}
	for _, in := range wireStructs() {
		typ := reflect.TypeOf(in)
		hasVersion := false
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			tag := f.Tag.Get("json")
			if tag == "" {
				t.Errorf("%s.%s: missing json tag", typ.Name(), f.Name)
				continue
			}
			name := strings.Split(tag, ",")[0]
			if name == "-" {
				continue
			}
			if !snakeCase.MatchString(name) {
				t.Errorf("%s.%s: json tag %q is not snake_case", typ.Name(), f.Name, name)
			}
			if name == "version" {
				hasVersion = true
			}
		}
		if topLevel[typ.Name()] && !hasVersion {
			t.Errorf("%s: top-level wire struct without a version field", typ.Name())
		}
	}
}
