package api

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestClientSharesKeepAliveTransport pins the client's connection
// discipline: every NewClient uses the one shared transport (so
// connection pools are program-wide, not per-client), and the pool is
// sized for a saturating load generator rather than DefaultTransport's
// two idle connections per host.
func TestClientSharesKeepAliveTransport(t *testing.T) {
	a, b := NewClient("http://x"), NewClient("http://y")
	if a.HTTPClient != b.HTTPClient {
		t.Fatal("NewClient built per-client http.Clients; the shared pool is the point")
	}
	tr, ok := a.HTTPClient.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default client transport is %T, want *http.Transport", a.HTTPClient.Transport)
	}
	if tr.MaxIdleConnsPerHost < 64 {
		t.Fatalf("MaxIdleConnsPerHost = %d; a multi-worker load generator would churn connections", tr.MaxIdleConnsPerHost)
	}
	if tr.DisableKeepAlives {
		t.Fatal("keep-alives disabled on the shared transport")
	}
	if (&Client{}).http() != defaultClient {
		t.Fatal("zero-value Client does not fall back to the shared client")
	}
}

// TestClientReusesConnections drives sequential calls through the
// shared transport against a connection-counting server: keep-alive
// must hold them all on one TCP connection.
func TestClientReusesConnections(t *testing.T) {
	var mu sync.Mutex
	conns := map[string]bool{}
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"version":"v1","sim_time_s":0,"steps_run":0}`))
	}))
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			mu.Lock()
			conns[c.RemoteAddr().String()] = true
			mu.Unlock()
		}
	}
	ts.Start()
	defer ts.Close()

	c := NewClient(ts.URL)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := c.Step(ctx, StepRequest{Steps: 1}); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	n := len(conns)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("20 sequential calls used %d connections, want 1 (keep-alive reuse)", n)
	}
}
