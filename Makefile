# Build / verification entry points. `make verify` is the CI gate:
# vet, build, and the full test suite under the race detector (the
# parallel experiment runner executes 8-wide inside it).

GO ?= go

.PHONY: build vet test race verify bench bench-smoke bench-runner

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the parallel runner and its CLI quickly.
race:
	$(GO) test -race ./internal/runner/... ./cmd/octl/...

verify:
	$(GO) vet ./... && $(GO) build ./... && $(GO) test -race ./...

# Full benchmark sweep (kernel, queueing hot path, fleet control loop,
# serving path, snapshot publication, and every figure / table
# regeneration) with allocation stats, parsed into BENCH_10.json
# (benchmark -> ns/op, allocs/op, B/op, custom metrics) with the
# checked-in pre-change baseline embedded alongside. Micro-benchmarks
# get pinned iteration counts: at -benchtime=1x a sub-100ns kernel
# primitive reads clock jitter, not cost, and the baseline deltas were
# meaningless. Harness benchmarks run one full experiment per op, so 1x
# is already the right unit for them (BenchmarkOcdbench runs a 1s
# closed-loop load test per op and reports p50/p99/p999 as custom
# metrics). The serving endpoint benchmarks pin 2000 iterations
# (µs-scale ops); the mixed read-while-stepping A/B pins 20000 (the
# per-read cost is ~µs and the stepper cycle is ms-scale, so short runs
# read scheduler noise); the publish benchmarks pin 100 (each op
# rebuilds dirty snapshot chunks, and the FullCopy arms pay a full
# 100k-server materialization per op).
# Takes ~10 minutes: BenchmarkRunnerAll replays the evaluation 4 times.
bench:
	( $(GO) test -bench=BenchmarkKernel -benchtime=200000x -benchmem -run='^$$' ./internal/sim/ && \
	  $(GO) test -bench=BenchmarkOversubscribed -benchtime=20x -benchmem -run='^$$' ./internal/queueing/ && \
	  $(GO) test -bench=. -benchtime=1000000x -benchmem -run='^$$' ./internal/telemetry/ && \
	  $(GO) test -bench='BenchmarkServing(Filter|Prioritize|Status|Metrics)$$' -benchtime=2000x -benchmem -run='^$$' ./internal/ocd/ && \
	  $(GO) test -bench=BenchmarkServingMixedReadWhileStepping -benchtime=20000x -benchmem -run='^$$' ./internal/ocd/ && \
	  $(GO) test -bench='BenchmarkPublish(Place|Step)(FullCopy)?$$' -benchtime=100x -benchmem -run='^$$' ./internal/ocd/ && \
	  $(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' \
	    $$($(GO) list ./... | grep -v -e internal/sim -e internal/queueing -e internal/telemetry -e internal/ocd) ) \
		| $(GO) run ./cmd/benchjson -baseline bench_baseline.json -out BENCH_10.json
	@cat BENCH_10.json

# CI bench smoke: one iteration of the kernel (both queue backends),
# oversubscription, a GB-scale harness (TableXI), fleet-simulation,
# sharded-hyperscale, mixed read-while-stepping serving and snapshot
# publication (COW + full-copy arms) hot-path benchmarks, piped
# through benchjson so benchmark and tooling rot fail fast.
bench-smoke:
	$(GO) test -bench='BenchmarkKernel|BenchmarkOversubscribed|BenchmarkTableXI$$|BenchmarkFleetSim$$|BenchmarkFleetHyperScale|BenchmarkServingMixedReadWhileStepping|BenchmarkPublishPlace' \
		-benchtime=1x -benchmem -run='^$$' \
		./internal/sim/ ./internal/queueing/ ./internal/ocd/ . | $(GO) run ./cmd/benchjson

# Serial-vs-parallel wall clock of the full evaluation.
bench-runner:
	$(GO) test -bench=BenchmarkRunnerAll -benchtime=1x
