# Build / verification entry points. `make verify` is the CI gate:
# vet, build, and the full test suite under the race detector (the
# parallel experiment runner executes 8-wide inside it).

GO ?= go

.PHONY: build vet test race verify bench bench-runner

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the parallel runner and its CLI quickly.
race:
	$(GO) test -race ./internal/runner/... ./cmd/octl/...

verify:
	$(GO) vet ./... && $(GO) build ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Serial-vs-parallel wall clock of the full evaluation.
bench-runner:
	$(GO) test -bench=BenchmarkRunnerAll -benchtime=1x
