# Build / verification entry points. `make verify` is the CI gate:
# vet, build, and the full test suite under the race detector (the
# parallel experiment runner executes 8-wide inside it).

GO ?= go

.PHONY: build vet test race verify bench bench-smoke bench-runner

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the parallel runner and its CLI quickly.
race:
	$(GO) test -race ./internal/runner/... ./cmd/octl/...

verify:
	$(GO) vet ./... && $(GO) build ./... && $(GO) test -race ./...

# Full benchmark sweep (kernel, queueing hot path, fleet control loop,
# and every figure / table regeneration), one iteration each with
# allocation stats, parsed into BENCH_7.json (benchmark -> ns/op,
# allocs/op, B/op, custom metrics) with the checked-in pre-change
# baseline embedded alongside.
# Takes ~10 minutes: BenchmarkRunnerAll replays the evaluation 4 times.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' ./... \
		| $(GO) run ./cmd/benchjson -baseline bench_baseline.json -out BENCH_7.json
	@cat BENCH_7.json

# CI bench smoke: one iteration of the kernel, oversubscription,
# fleet-simulation and sharded-hyperscale hot-path benchmarks, piped
# through benchjson so benchmark and tooling rot fail fast.
bench-smoke:
	$(GO) test -bench='BenchmarkKernel|BenchmarkOversubscribed|BenchmarkFleetSim$$|BenchmarkFleetHyperScale' \
		-benchtime=1x -benchmem -run='^$$' \
		./internal/sim/ ./internal/queueing/ . | $(GO) run ./cmd/benchjson

# Serial-vs-parallel wall clock of the full evaluation.
bench-runner:
	$(GO) test -bench=BenchmarkRunnerAll -benchtime=1x
