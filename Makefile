# Build / verification entry points. `make verify` is the CI gate:
# vet, build, and the full test suite under the race detector (the
# parallel experiment runner executes 8-wide inside it).

GO ?= go

.PHONY: build vet test race verify bench bench-smoke bench-runner

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the parallel runner and its CLI quickly.
race:
	$(GO) test -race ./internal/runner/... ./cmd/octl/...

verify:
	$(GO) vet ./... && $(GO) build ./... && $(GO) test -race ./...

# Full benchmark sweep (kernel, queueing hot path, fleet control loop,
# and every figure / table regeneration) with allocation stats, parsed
# into BENCH_8.json (benchmark -> ns/op, allocs/op, B/op, custom
# metrics) with the checked-in pre-change baseline embedded alongside.
# Micro-benchmarks get pinned iteration counts: at -benchtime=1x a
# sub-100ns kernel primitive reads clock jitter, not cost, and the
# baseline deltas were meaningless. Harness benchmarks run one full
# experiment per op, so 1x is already the right unit for them.
# Takes ~10 minutes: BenchmarkRunnerAll replays the evaluation 4 times.
bench:
	( $(GO) test -bench=BenchmarkKernel -benchtime=200000x -benchmem -run='^$$' ./internal/sim/ && \
	  $(GO) test -bench=BenchmarkOversubscribed -benchtime=20x -benchmem -run='^$$' ./internal/queueing/ && \
	  $(GO) test -bench=. -benchtime=1000000x -benchmem -run='^$$' ./internal/telemetry/ && \
	  $(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' \
	    $$($(GO) list ./... | grep -v -e internal/sim -e internal/queueing -e internal/telemetry) ) \
		| $(GO) run ./cmd/benchjson -baseline bench_baseline.json -out BENCH_8.json
	@cat BENCH_8.json

# CI bench smoke: one iteration of the kernel (both queue backends),
# oversubscription, a GB-scale harness (TableXI), fleet-simulation and
# sharded-hyperscale hot-path benchmarks, piped through benchjson so
# benchmark and tooling rot fail fast.
bench-smoke:
	$(GO) test -bench='BenchmarkKernel|BenchmarkOversubscribed|BenchmarkTableXI$$|BenchmarkFleetSim$$|BenchmarkFleetHyperScale' \
		-benchtime=1x -benchmem -run='^$$' \
		./internal/sim/ ./internal/queueing/ . | $(GO) run ./cmd/benchjson

# Serial-vs-parallel wall clock of the full evaluation.
bench-runner:
	$(GO) test -bench=BenchmarkRunnerAll -benchtime=1x
