// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment harness
// and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation and prints the measured values next
// to the timing. Calibration against the paper's numbers is asserted
// by the unit tests in internal/...; the benchmarks measure the cost
// of regenerating each artifact.
package immersionoc_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"immersionoc/internal/dcsim"
	"immersionoc/internal/experiments"
	"immersionoc/internal/runner"
	"immersionoc/internal/telemetry"
	"immersionoc/internal/vm"
)

// BenchmarkRunnerAll regenerates the full table evaluation through the
// experiment runner, serially and with a GOMAXPROCS-wide worker pool.
// On a multi-core machine the parallel case amortizes the serial sum
// (the report's "serial cost") down to roughly the slowest experiment.
// The telemetry-on/telemetry-off pair measures the collection overhead
// on identical serial runs; the budget is < 2%.
func BenchmarkRunnerAll(b *testing.B) {
	exps := experiments.Tables()
	if len(exps) == 0 {
		b.Fatal("empty registry")
	}
	for _, bc := range []struct {
		name    string
		workers int
		metrics *telemetry.Registry
	}{
		{"serial", 1, nil},
		{"parallel", runtime.GOMAXPROCS(0), nil},
		{"telemetry-on", 1, telemetry.NewRegistry()},
		{"telemetry-off", 1, telemetry.Off},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runner.Run(context.Background(), exps, runner.Config{Workers: bc.workers, Metrics: bc.metrics})
				if failed := r.Failed(); len(failed) > 0 {
					b.Fatalf("%s: %v", failed[0].Name, failed[0].Err)
				}
			}
		})
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.TableI(); len(tbl.Rows) != 6 {
			b.Fatal("bad Table I")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.TableII(); len(tbl.Rows) != 4 {
			b.Fatal("bad Table II")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	var tj float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIIIData()
		if err != nil {
			b.Fatal(err)
		}
		tj = rows[1].TjC
	}
	b.ReportMetric(tj, "2PIC-Tj-°C")
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Fig4(); len(tbl.Rows) != 5 {
			b.Fatal("bad Fig 4")
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	var ocLife float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableVData()
		if err != nil {
			b.Fatal(err)
		}
		ocLife = rows[5].Lifetime // HFE-7000 overclocked
	}
	b.ReportMetric(ocLife, "HFE-OC-lifetime-years")
}

func BenchmarkPowerSavings(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		sb, _, err := experiments.PowerSavings()
		if err != nil {
			b.Fatal(err)
		}
		total = sb.Total()
	}
	b.ReportMetric(total, "savings-W")
}

func BenchmarkStability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.StabilityReport(); len(tbl.Rows) != 3 {
			b.Fatal("bad stability report")
		}
	}
}

func BenchmarkTableVI(b *testing.B) {
	var nonOC float64
	for i := 0; i < b.N; i++ {
		_, _, n, _, err := experiments.TableVIData()
		if err != nil {
			b.Fatal(err)
		}
		nonOC = n.Total()
	}
	b.ReportMetric((nonOC-1)*100, "nonOC-TCO-delta-%")
}

func BenchmarkTCOOversub(b *testing.B) {
	var vsAir float64
	for i := 0; i < b.N; i++ {
		_, ocS, _, err := experiments.OversubTCO()
		if err != nil {
			b.Fatal(err)
		}
		vsAir = ocS.VsAir
	}
	b.ReportMetric(vsAir*100, "vcore-saving-%")
}

func BenchmarkFig9(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		best = 0
		for _, c := range experiments.Fig9Data() {
			if c.Improvement > best {
				best = c.Improvement
			}
		}
	}
	b.ReportMetric(best*100, "best-improvement-%")
}

func BenchmarkFig10(b *testing.B) {
	var oc3 float64
	for i := 0; i < b.N; i++ {
		for _, c := range experiments.Fig10Data() {
			if c.Config == "OC3" && c.Kernel == "triad" {
				oc3 = c.VsB1
			}
		}
	}
	b.ReportMetric(oc3*100, "triad-OC3-gain-%")
}

func BenchmarkFig11(b *testing.B) {
	var p99 float64
	for i := 0; i < b.N; i++ {
		for _, c := range experiments.Fig11Data() {
			if c.Config == "OCG3" && c.Model == "VGG16" {
				p99 = c.P99PowerW
			}
		}
	}
	b.ReportMetric(p99, "OCG3-P99-W")
}

func BenchmarkFig12(b *testing.B) {
	p := experiments.DefaultFig12Params()
	p.DurationS = 150
	p.PCoreSteps = []int{12, 16}
	var ratio float64
	for i := 0; i < b.N; i++ {
		data := experiments.Fig12Data(p)
		b16, _ := experiments.Fig12Find(data, "B2", 16)
		o12, _ := experiments.Fig12Find(data, "OC3", 12)
		ratio = o12.MeanP95MS / b16.MeanP95MS
	}
	b.ReportMetric(ratio, "OC3@12/B2@16-P95")
}

// BenchmarkSweepFig12 measures the intra-experiment sweep engine on
// the Figure 12 grid (10 cells at 120 simulated seconds): the serial
// case is the workers≤1 fast path — the plain loop the sweep replaced,
// whose cost must stay within noise of the pre-sweep code — and the
// parallel case fans the cells out GOMAXPROCS-wide under the shared
// budget. On a multi-core machine the parallel case approaches
// serial/cores; on a 1-CPU container the two are equal.
func BenchmarkSweepFig12(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			p := experiments.DefaultFig12Params()
			p.DurationS = 120
			p.Workers = bc.workers
			var ratio float64
			for i := 0; i < b.N; i++ {
				data, err := experiments.Fig12DataCtx(context.Background(), p)
				if err != nil {
					b.Fatal(err)
				}
				b16, _ := experiments.Fig12Find(data, "B2", 16)
				o12, _ := experiments.Fig12Find(data, "OC3", 12)
				ratio = o12.MeanP95MS / b16.MeanP95MS
			}
			b.ReportMetric(ratio, "OC3@12/B2@16-P95")
		})
	}
}

func BenchmarkFig13(b *testing.B) {
	p := experiments.DefaultFig13Params()
	p.DurationS = 120
	var best float64
	for i := 0; i < b.N; i++ {
		best = 0
		for _, c := range experiments.Fig13Data(p) {
			if c.Config == "OC3-oversub" && c.Improvement > best {
				best = c.Improvement
			}
		}
	}
	b.ReportMetric(best*100, "best-OC3-gain-%")
}

func BenchmarkFig15(b *testing.B) {
	var freqAt3000 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15Data(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		freqAt3000 = res.WithModel.FreqFrac.At(1110)
	}
	b.ReportMetric(freqAt3000*100, "freq-at-3000QPS-%")
}

func BenchmarkTableXI(b *testing.B) {
	var ocaVMh float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableXIData(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ocaVMh = res.OCA.VMHours
	}
	b.ReportMetric(ocaVMh, "OC-A-VM-hours")
}

func BenchmarkFig16(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableXIData(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		peak = res.Baseline.Util.Max()
	}
	b.ReportMetric(peak*100, "baseline-peak-util-%")
}

func BenchmarkPacking(b *testing.B) {
	trace := vm.DefaultTrace
	trace.ArrivalRatePerS = 0.012
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = experiments.PackingData(24, trace, 0.25).DensityGain
	}
	b.ReportMetric(gain*100, "density-gain-%")
}

func BenchmarkBuffers(b *testing.B) {
	trace := vm.DefaultTrace
	trace.ArrivalRatePerS = 0.25
	trace.DurationS = 24 * 3600
	trace.MeanLifetimeS = 48 * 3600
	var extra float64
	for i := 0; i < b.N; i++ {
		res := experiments.BuffersData(20, 2, 0.10, trace)
		extra = float64(res.VirtualSellable - res.StaticSellable)
	}
	b.ReportMetric(extra, "extra-sellable-vcores")
}

func BenchmarkCapacityCrisis(b *testing.B) {
	trace := vm.DefaultTrace
	trace.Seed = 99
	trace.ArrivalRatePerS = 0.012
	trace.DurationS = 2 * 24 * 3600
	trace.MeanLifetimeS = 24 * 3600
	var saved float64
	for i := 0; i < b.N; i++ {
		res := experiments.CapacityCrisisData(16, trace)
		saved = float64(res.DeniedBaseline - res.DeniedOC)
	}
	b.ReportMetric(saved, "denials-avoided")
}

func BenchmarkCapping(b *testing.B) {
	var kept float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.CappingData(0.06)
		if err != nil {
			b.Fatal(err)
		}
		kept = res.Priority["critical-latency"].FreqGHz
	}
	b.ReportMetric(kept, "critical-freq-GHz")
}

func BenchmarkTankEnvelope(b *testing.B) {
	var budget float64
	for i := 0; i < b.N; i++ {
		_, n, err := experiments.TankData()
		if err != nil {
			b.Fatal(err)
		}
		budget = float64(n)
	}
	b.ReportMetric(budget, "tank-OC-budget-servers")
}

func BenchmarkHighPerf(b *testing.B) {
	var denied float64
	for i := 0; i < b.N; i++ {
		_, airDenied, err := experiments.HighPerfData()
		if err != nil {
			b.Fatal(err)
		}
		denied = float64(airDenied)
	}
	b.ReportMetric(denied, "air-denied-of-8")
}

func BenchmarkWearBudget(b *testing.B) {
	var fc float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WearBudgetData()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Cooling == "FC-3284" {
				fc = r.DutyCycle
			}
		}
	}
	b.ReportMetric(fc*100, "FC-duty-cycle-%")
}

func BenchmarkAblationBEC(b *testing.B) {
	var dTj float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBECData()
		if err != nil {
			b.Fatal(err)
		}
		dTj = rows[1].TjOverclockC - rows[0].TjOverclockC
	}
	b.ReportMetric(dTj, "BEC-Tj-saving-°C")
}

func BenchmarkAblationBursts(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		penalty = experiments.AblationBurstsData().Penalty
	}
	b.ReportMetric(penalty, "correlation-penalty-x")
}

func BenchmarkAblationEq1(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationEq1Data(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		saving = 1 - res.Model.AvgVMPowerW/res.Naive.AvgVMPowerW
	}
	b.ReportMetric(saving*100, "Eq1-power-saving-%")
}

func BenchmarkPolicyComparison(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		results, err := experiments.PolicyComparisonData(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		base := results[0]
		best = 1
		for _, r := range results {
			if v := r.P95LatencyS / base.P95LatencyS; v < best {
				best = v
			}
		}
	}
	b.ReportMetric(best, "best-norm-P95")
}

func BenchmarkCoolingComparison(b *testing.B) {
	var fcDuty float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CoolingComparisonData()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Tech == "2PIC FC-3284" {
				fcDuty = r.OCDutyCycle
			}
		}
	}
	b.ReportMetric(fcDuty*100, "FC-OC-duty-%")
}

func BenchmarkDiurnal(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.DiurnalData(experiments.Options{DurationS: 1800})
		if err != nil {
			b.Fatal(err)
		}
		saved = res.Results[0].VMHours - res.Results[2].VMHours
	}
	b.ReportMetric(saved, "OC-A-VMh-saved")
}

func BenchmarkFleetSim(b *testing.B) {
	cfg := dcsim.DefaultConfig()
	cfg.Trace.DurationS = 24 * 3600
	var ocHours float64
	for i := 0; i < b.N; i++ {
		rep, err := dcsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ocHours = rep.OverclockServerHours
	}
	b.ReportMetric(ocHours, "OC-server-hours")
}

// BenchmarkFleetHyperScale is the sharding tentpole's scale point:
// 100,000 servers across 8,334 tanks absorbing a 1,000,000-VM arrival
// wave (≈250k concurrent at steady state), stepped across 8 shards
// drawn from the shared sweep budget. The reported ms/step is the
// wall-clock cost of one control step at hyperscale; the target is
// <1 s/step on a multicore host. KPIs are byte-stable at any shard
// count, so the OC-server-hours metric doubles as a determinism probe
// against BENCH history.
func BenchmarkFleetHyperScale(b *testing.B) {
	cfg := dcsim.DefaultConfig()
	cfg.Servers = 100_000
	cfg.ServersPerTank = 12
	cfg.FeederBudgetW = 34_700_000
	cfg.Shards = 8
	cfg.Trace.DurationS = 4 * 3600
	cfg.Trace.ArrivalRatePerS = 1_000_000.0 / (4 * 3600)
	cfg.Trace.MeanLifetimeS = 3600
	steps := cfg.Trace.DurationS / cfg.StepS
	var ocHours float64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		rep, err := dcsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ocHours = rep.OverclockServerHours
	}
	b.ReportMetric(float64(time.Since(start).Milliseconds())/(float64(b.N)*steps), "ms/step")
	b.ReportMetric(ocHours, "OC-server-hours")
}

// BenchmarkFleetScale is the production-scale point of the fleet
// control plane: 1,000 servers across 84 tanks replaying a ~10,000-VM
// day-long trace under a row feeder budget. It exists to keep the
// dcsim control step O(changed state) — at this size any per-step
// full-fleet recompute (demand, row power, hazard rates) dominates the
// run and shows up here first.
func BenchmarkFleetScale(b *testing.B) {
	cfg := dcsim.DefaultConfig()
	cfg.Servers = 1000
	cfg.ServersPerTank = 12
	cfg.FeederBudgetW = 347000
	cfg.Trace.DurationS = 24 * 3600
	cfg.Trace.ArrivalRatePerS = 10000.0 / (24 * 3600)
	cfg.Trace.MeanLifetimeS = 10 * 3600
	var ocHours float64
	for i := 0; i < b.N; i++ {
		rep, err := dcsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ocHours = rep.OverclockServerHours
	}
	b.ReportMetric(ocHours, "OC-server-hours")
}
